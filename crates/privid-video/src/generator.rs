//! Scene generators: synthetic stand-ins for the paper's evaluation videos.
//!
//! The paper evaluates on three 12-hour YouTube streams (campus, highway,
//! urban) whose relevant characteristics are: arrival volume, a heavy-tailed
//! persistence distribution with a small population of *lingering* objects
//! (parked cars, people on benches) concentrated in fixed regions, a diurnal
//! arrival pattern (Fig. 5), a class mix (people vs. vehicles), and static
//! non-private objects (trees, traffic lights) used by Q7–Q12. The generators
//! here produce ground-truth scenes with those characteristics from a seeded
//! RNG, so every experiment is reproducible.

use crate::geometry::{BoundingBox, FrameSize, Point, Region, RegionBoundary, RegionScheme};
use crate::object::{Attributes, ObjectClass, ObjectId, PresenceSegment, TrackedObject, VehicleColor};
use crate::scene::{CameraId, Scene};
use crate::time::{FrameRate, Seconds, TimeSpan};
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which evaluation video a configuration models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SceneKind {
    /// Campus walkway: mostly pedestrians, two crosswalks, bench areas where
    /// people linger.
    Campus,
    /// Highway: vehicles only, two directions (hard boundary), a shoulder
    /// where cars park for very long periods.
    Highway,
    /// Urban intersection: dense pedestrian traffic, four crosswalks,
    /// storefront areas where people linger.
    Urban,
    /// A named custom scene (used for the BlazeIt / MIRIS extended catalog).
    Custom(String),
}

impl SceneKind {
    /// Short name used as the camera id.
    pub fn name(&self) -> String {
        match self {
            SceneKind::Campus => "campus".to_string(),
            SceneKind::Highway => "highway".to_string(),
            SceneKind::Urban => "urban".to_string(),
            SceneKind::Custom(n) => n.clone(),
        }
    }
}

/// Full parameterization of a synthetic scene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Which video this models.
    pub kind: SceneKind,
    /// Total recording duration in seconds (paper: 12 h = 43 200 s).
    pub duration_secs: Seconds,
    /// Frame rate of the camera.
    pub fps: f64,
    /// Frame dimensions.
    pub frame_size: FrameSize,
    /// RNG seed; identical seeds produce identical scenes.
    pub seed: u64,
    /// Mean arrivals of private objects per hour at the diurnal peak.
    pub arrivals_per_hour: f64,
    /// Natural-log mean of the pass-through dwell time (seconds).
    pub dwell_ln_mu: f64,
    /// Natural-log standard deviation of the pass-through dwell time.
    pub dwell_ln_sigma: f64,
    /// Fraction of arrivals that linger in a linger region.
    pub linger_fraction: f64,
    /// Natural-log mean of the lingering dwell time (seconds).
    pub linger_ln_mu: f64,
    /// Natural-log standard deviation of the lingering dwell time.
    pub linger_ln_sigma: f64,
    /// Hard cap on any dwell time (seconds); bounds the ground-truth ρ.
    pub max_dwell_secs: Seconds,
    /// Fraction of private arrivals that are vehicles (rest are pedestrians).
    pub car_fraction: f64,
    /// Probability an object re-appears later with a second segment (K = 2).
    pub revisit_probability: f64,
    /// Regions (normalized `(x, y, w, h)` in `[0, 1]`) where lingering objects rest.
    pub linger_regions: Vec<(f64, f64, f64, f64)>,
    /// Number of static trees in the scene.
    pub tree_count: usize,
    /// Fraction of trees that have bloomed (Q7–Q9 ground truth).
    pub tree_leaf_fraction: f64,
    /// Red-phase duration of the scene's traffic light in seconds (0 = none).
    pub red_light_duration: Seconds,
    /// Whether arrivals follow a diurnal (midday-peaked) pattern.
    pub diurnal: bool,
    /// Fraction of pass-through pedestrians heading "north" (Q13 filter).
    pub northbound_fraction: f64,
}

impl SceneConfig {
    /// The campus walkway preset. Roughly 1.4k pedestrians over 12 h with
    /// bench-lingerers up to ~30 min (Fig. 4a shape).
    pub fn campus() -> Self {
        SceneConfig {
            kind: SceneKind::Campus,
            duration_secs: 12.0 * 3600.0,
            fps: 1.0,
            frame_size: FrameSize::full_hd(),
            seed: 0xCA4B5,
            arrivals_per_hour: 170.0,
            dwell_ln_mu: 3.3,   // e^3.3 ≈ 27 s median crossing
            dwell_ln_sigma: 0.5,
            linger_fraction: 0.04,
            linger_ln_mu: 5.8,  // e^5.8 ≈ 330 s median sit
            linger_ln_sigma: 0.7,
            max_dwell_secs: 1950.0,
            car_fraction: 0.05,
            revisit_probability: 0.05,
            linger_regions: vec![(0.05, 0.75, 0.15, 0.2), (0.8, 0.05, 0.15, 0.2)],
            tree_count: 15,
            tree_leaf_fraction: 1.0,
            red_light_duration: 75.0,
            diurnal: true,
            northbound_fraction: 0.45,
        }
    }

    /// The highway preset. Vehicle-dominated, very heavy tail from parked
    /// cars on the shoulder (Fig. 4b shape, Table 6 row `highway`).
    pub fn highway() -> Self {
        SceneConfig {
            kind: SceneKind::Highway,
            duration_secs: 12.0 * 3600.0,
            fps: 1.0,
            frame_size: FrameSize::full_hd(),
            seed: 0x416841,
            arrivals_per_hour: 4000.0,
            dwell_ln_mu: 2.3,   // e^2.3 ≈ 10 s median traversal
            dwell_ln_sigma: 0.4,
            linger_fraction: 0.002,
            linger_ln_mu: 8.0,  // e^8 ≈ 3000 s median park
            linger_ln_sigma: 1.0,
            max_dwell_secs: 28800.0,
            car_fraction: 1.0,
            revisit_probability: 0.02,
            linger_regions: vec![(0.02, 0.85, 0.2, 0.12)],
            tree_count: 7,
            tree_leaf_fraction: 3.0 / 7.0,
            red_light_duration: 50.0,
            diurnal: true,
            northbound_fraction: 0.0,
        }
    }

    /// The urban intersection preset. Dense pedestrian traffic across four
    /// crosswalks with storefront lingerers (Fig. 4c shape).
    pub fn urban() -> Self {
        SceneConfig {
            kind: SceneKind::Urban,
            duration_secs: 12.0 * 3600.0,
            fps: 1.0,
            frame_size: FrameSize::full_hd(),
            seed: 0x04B44,
            arrivals_per_hour: 3600.0,
            dwell_ln_mu: 3.0,   // e^3 ≈ 20 s median crossing
            dwell_ln_sigma: 0.55,
            linger_fraction: 0.01,
            linger_ln_mu: 5.5,
            linger_ln_sigma: 0.9,
            max_dwell_secs: 2750.0,
            car_fraction: 0.25,
            revisit_probability: 0.08,
            linger_regions: vec![(0.0, 0.0, 0.12, 0.3), (0.85, 0.6, 0.15, 0.3)],
            tree_count: 6,
            tree_leaf_fraction: 4.0 / 6.0,
            red_light_duration: 100.0,
            diurnal: true,
            northbound_fraction: 0.4,
        }
    }

    /// Shrink the scene's duration (and keep the hourly rates), useful for
    /// tests and fast experiment iterations.
    pub fn with_duration_hours(mut self, hours: f64) -> Self {
        self.duration_secs = hours * 3600.0;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scale the arrival volume (e.g. `0.1` for a 10× smaller scene).
    pub fn with_arrival_scale(mut self, scale: f64) -> Self {
        self.arrivals_per_hour *= scale;
        self
    }

    /// Override the camera frame rate.
    pub fn with_fps(mut self, fps: f64) -> Self {
        self.fps = fps;
        self
    }
}

/// Relative arrival intensity by hour since the start of recording (6am).
/// Peaks around midday, matching the shape of the Fig. 5 time series.
fn diurnal_factor(hours_since_start: f64) -> f64 {
    // 6am start; map to a sinusoid peaking 6 hours in (noon) with a floor.
    let x = (hours_since_start / 12.0 * std::f64::consts::PI).sin();
    0.35 + 0.65 * x.max(0.0)
}

/// Sample a standard normal variate via Box–Muller (rand 0.8 has no normal
/// distribution without rand_distr, which is outside the allowed crate set).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a log-normal variate with the given natural-log mean and sigma.
fn lognormal(rng: &mut StdRng, ln_mu: f64, ln_sigma: f64) -> f64 {
    (ln_mu + ln_sigma * standard_normal(rng)).exp()
}

/// Sample a Poisson variate; Knuth's algorithm for small rates, normal
/// approximation for large ones.
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            k += 1;
            p *= rng.gen_range(0.0..1.0);
            if p <= l {
                return k - 1;
            }
        }
    } else {
        (lambda + lambda.sqrt() * standard_normal(rng)).round().max(0.0) as u64
    }
}

/// Generates a [`Scene`] from a [`SceneConfig`].
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    config: SceneConfig,
}

impl SceneGenerator {
    /// Construct a generator.
    pub fn new(config: SceneConfig) -> Self {
        SceneGenerator { config }
    }

    /// The configuration this generator uses.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Generate the scene (deterministic for a given configuration).
    pub fn generate(&self) -> Scene {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let fw = cfg.frame_size.width as f64;
        let fh = cfg.frame_size.height as f64;
        let mut objects = Vec::new();
        let mut next_id = 0u64;

        // --- Private arrivals (people / vehicles) ------------------------------------
        let hours = cfg.duration_secs / 3600.0;
        let mut hour = 0.0;
        while hour < hours {
            let slice = (hours - hour).min(1.0);
            let factor = if cfg.diurnal { diurnal_factor(hour) } else { 1.0 };
            let lambda = cfg.arrivals_per_hour * factor * slice;
            let n = sample_poisson(&mut rng, lambda);
            for _ in 0..n {
                let arrival = (hour + rng.gen_range(0.0..slice)) * 3600.0;
                let obj = self.make_private_object(&mut rng, &mut next_id, arrival, fw, fh);
                objects.push(obj);
            }
            hour += slice;
        }

        // --- Static non-private objects -----------------------------------------------
        let scene_span = TimeSpan::from_secs(cfg.duration_secs);
        for i in 0..cfg.tree_count {
            let has_leaves = (i as f64) < cfg.tree_leaf_fraction * cfg.tree_count as f64;
            let at = Point::new(rng.gen_range(0.05..0.95) * fw, rng.gen_range(0.02..0.15) * fh);
            objects.push(TrackedObject::new(
                ObjectId(next_id),
                ObjectClass::Tree,
                Attributes { has_leaves, ..Attributes::default() },
                vec![PresenceSegment { span: scene_span, trajectory: Trajectory::stationary(at, 60.0, 120.0) }],
            ));
            next_id += 1;
        }
        if cfg.red_light_duration > 0.0 {
            objects.push(TrackedObject::new(
                ObjectId(next_id),
                ObjectClass::TrafficLight,
                Attributes { red_light_duration: cfg.red_light_duration, ..Attributes::default() },
                vec![PresenceSegment {
                    span: scene_span,
                    trajectory: Trajectory::stationary(Point::new(0.5 * fw, 0.06 * fh), 20.0, 50.0),
                }],
            ));
        }

        let mut scene = Scene::new(
            CameraId::new(cfg.kind.name()),
            scene_span,
            FrameRate::new(cfg.fps),
            cfg.frame_size,
            objects,
        );
        scene.add_region_scheme("default", self.default_region_scheme(fw, fh));
        scene
    }

    /// Build one private object arriving at `arrival` seconds.
    fn make_private_object(
        &self,
        rng: &mut StdRng,
        next_id: &mut u64,
        arrival: f64,
        fw: f64,
        fh: f64,
    ) -> TrackedObject {
        let cfg = &self.config;
        let is_car = rng.gen_bool(cfg.car_fraction.clamp(0.0, 1.0));
        let class = if is_car { ObjectClass::Car } else { ObjectClass::Person };
        let lingers = rng.gen_bool(cfg.linger_fraction.clamp(0.0, 1.0));

        let dwell = if lingers {
            lognormal(rng, cfg.linger_ln_mu, cfg.linger_ln_sigma).clamp(60.0, cfg.max_dwell_secs)
        } else {
            lognormal(rng, cfg.dwell_ln_mu, cfg.dwell_ln_sigma).clamp(2.0, cfg.max_dwell_secs)
        };
        let end = (arrival + dwell).min(cfg.duration_secs);
        let span = TimeSpan::between_secs(arrival.min(cfg.duration_secs - 1.0), end.max(arrival.min(cfg.duration_secs - 1.0) + 1.0));

        let (w, h) = if is_car { (0.06 * fw, 0.04 * fh) } else { (0.02 * fw, 0.06 * fh) };
        let northbound = rng.gen_bool(cfg.northbound_fraction.clamp(0.0, 1.0));

        let trajectory = if lingers && !cfg.linger_regions.is_empty() {
            let region = cfg.linger_regions[rng.gen_range(0..cfg.linger_regions.len())]; // privid-analyzer: allow(panic-freedom) -- gen_range is bounded by the same len; emptiness checked in the condition above
            let rest = Point::new(
                (region.0 + rng.gen_range(0.0..region.2)) * fw,
                (region.1 + rng.gen_range(0.0..region.3)) * fh,
            );
            let entry = Point::new(rng.gen_range(0.0..0.1) * fw, rest.y);
            let exit = Point::new(rng.gen_range(0.9..1.0) * fw, rest.y);
            // Approach/depart over at most ~60 s of the dwell.
            let approach = (60.0 / dwell).min(0.2);
            Trajectory::dwell(entry, rest, exit, approach, w, h)
        } else {
            self.passthrough_trajectory(rng, northbound, fw, fh, w, h)
        };

        let mut segments = vec![PresenceSegment { span, trajectory: trajectory.clone() }];
        // Possible second appearance (K = 2) later in the recording.
        if rng.gen_bool(cfg.revisit_probability.clamp(0.0, 1.0)) {
            let gap = rng.gen_range(600.0..3600.0);
            let start2 = span.end.as_secs() + gap;
            if start2 + 2.0 < cfg.duration_secs {
                let dwell2 = lognormal(rng, cfg.dwell_ln_mu, cfg.dwell_ln_sigma).clamp(2.0, cfg.max_dwell_secs);
                let end2 = (start2 + dwell2).min(cfg.duration_secs);
                segments.push(PresenceSegment { span: TimeSpan::between_secs(start2, end2), trajectory: trajectory.clone() });
            }
        }

        let moving_north = trajectory.moves_north();
        let attributes = if is_car {
            Attributes {
                plate: format!("PLT{:06}", *next_id),
                // privid-analyzer: allow(panic-freedom) -- gen_range is bounded by ALL.len()
                color: Some(VehicleColor::ALL[rng.gen_range(0..VehicleColor::ALL.len())]),
                speed_kmh: rng.gen_range(30.0..110.0),
                moving_north,
                ..Attributes::default()
            }
        } else {
            Attributes { speed_kmh: rng.gen_range(3.0..7.0), moving_north, ..Attributes::default() }
        };

        let obj = TrackedObject::new(ObjectId(*next_id), class, attributes, segments);
        *next_id += 1;
        obj
    }

    /// A straight pass-through trajectory appropriate for the scene kind.
    fn passthrough_trajectory(
        &self,
        rng: &mut StdRng,
        northbound: bool,
        fw: f64,
        fh: f64,
        w: f64,
        h: f64,
    ) -> Trajectory {
        match self.config.kind {
            SceneKind::Highway => {
                // Two directions in separate halves of the frame (hard boundary).
                let eastbound = rng.gen_bool(0.5);
                let lane_y = if eastbound { rng.gen_range(0.25..0.45) } else { rng.gen_range(0.55..0.75) } * fh;
                if eastbound {
                    Trajectory::linear(Point::new(0.0, lane_y), Point::new(fw, lane_y), w, h)
                } else {
                    Trajectory::linear(Point::new(fw, lane_y), Point::new(0.0, lane_y), w, h)
                }
            }
            _ => {
                // Crosswalk-style motion: either horizontal or vertical.
                if rng.gen_bool(0.5) {
                    let y = rng.gen_range(0.3..0.9) * fh;
                    let ltr = rng.gen_bool(0.5);
                    let (x0, x1) = if ltr { (0.0, fw) } else { (fw, 0.0) };
                    Trajectory::linear(Point::new(x0, y), Point::new(x1, y), w, h)
                } else {
                    let x = rng.gen_range(0.2..0.8) * fw;
                    let (y0, y1) = if northbound { (fh, 0.15 * fh) } else { (0.15 * fh, fh) };
                    Trajectory::linear(Point::new(x, y0), Point::new(x, y1), w, h)
                }
            }
        }
    }

    /// The video owner's published spatial-splitting scheme for this scene
    /// (§7.2): crosswalk regions for campus/urban, per-direction lanes
    /// (hard boundary) for highway.
    fn default_region_scheme(&self, fw: f64, fh: f64) -> RegionScheme {
        match self.config.kind {
            SceneKind::Highway => RegionScheme::new(
                vec![
                    Region { id: 0, name: "eastbound".into(), bbox: BoundingBox::new(0.0, 0.0, fw, 0.5 * fh) },
                    Region { id: 1, name: "westbound".into(), bbox: BoundingBox::new(0.0, 0.5 * fh, fw, 0.5 * fh) },
                ],
                RegionBoundary::Hard,
            ),
            SceneKind::Campus => RegionScheme::new(
                vec![
                    Region { id: 0, name: "crosswalk-west".into(), bbox: BoundingBox::new(0.0, 0.0, 0.5 * fw, fh) },
                    Region { id: 1, name: "crosswalk-east".into(), bbox: BoundingBox::new(0.5 * fw, 0.0, 0.5 * fw, fh) },
                ],
                RegionBoundary::Soft,
            ),
            _ => RegionScheme::new(
                vec![
                    Region { id: 0, name: "crosswalk-nw".into(), bbox: BoundingBox::new(0.0, 0.0, 0.5 * fw, 0.5 * fh) },
                    Region { id: 1, name: "crosswalk-ne".into(), bbox: BoundingBox::new(0.5 * fw, 0.0, 0.5 * fw, 0.5 * fh) },
                    Region { id: 2, name: "crosswalk-sw".into(), bbox: BoundingBox::new(0.0, 0.5 * fh, 0.5 * fw, 0.5 * fh) },
                    Region { id: 3, name: "crosswalk-se".into(), bbox: BoundingBox::new(0.5 * fw, 0.5 * fh, 0.5 * fw, 0.5 * fh) },
                ],
                RegionBoundary::Soft,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cfg: SceneConfig) -> Scene {
        SceneGenerator::new(cfg.with_duration_hours(0.5).with_arrival_scale(0.5)).generate()
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = small(SceneConfig::campus());
        let b = small(SceneConfig::campus());
        assert_eq!(a.object_count(), b.object_count());
        assert_eq!(a.objects[0].id, b.objects[0].id);
        assert_eq!(a.objects.last().unwrap().segments.len(), b.objects.last().unwrap().segments.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small(SceneConfig::campus());
        let b = small(SceneConfig::campus().with_seed(99));
        // Discrete statistics such as object_count collide between seeds with
        // non-trivial probability; the continuous arrival times do not.
        let starts = |s: &Scene| -> Vec<f64> {
            s.objects.iter().flat_map(|o| o.segments.iter().map(|seg| seg.span.start.as_secs())).collect()
        };
        assert_ne!(starts(&a), starts(&b));
    }

    #[test]
    fn campus_is_person_dominated_highway_is_cars_only() {
        let campus = small(SceneConfig::campus());
        let highway = small(SceneConfig::highway());
        let campus_people =
            campus.objects.iter().filter(|o| o.class == ObjectClass::Person).count() as f64;
        let campus_private = campus.objects.iter().filter(|o| o.class.is_private()).count() as f64;
        assert!(campus_people / campus_private > 0.8);
        assert!(highway.objects.iter().filter(|o| o.class.is_private()).all(|o| o.class == ObjectClass::Car));
    }

    #[test]
    fn persistence_is_heavy_tailed() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(2.0)).generate();
        let durations: Vec<f64> =
            scene.objects.iter().filter(|o| o.class.is_private()).map(|o| o.max_segment_duration()).collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        let max = durations.iter().cloned().fold(0.0, f64::max);
        assert!(max > 4.0 * mean, "expected a heavy tail: max {max}, mean {mean}");
    }

    #[test]
    fn lingerers_rest_inside_linger_regions() {
        let cfg = SceneConfig::campus().with_duration_hours(2.0);
        let regions = cfg.linger_regions.clone();
        let scene = SceneGenerator::new(cfg).generate();
        let fw = scene.frame_size.width as f64;
        let fh = scene.frame_size.height as f64;
        let mut found_lingerer = false;
        for obj in scene.objects.iter().filter(|o| o.class.is_private()) {
            if let crate::trajectory::TrajectoryKind::Dwell { rest, .. } = &obj.segments[0].trajectory.kind {
                found_lingerer = true;
                let inside = regions.iter().any(|r| {
                    rest.x >= r.0 * fw
                        && rest.x <= (r.0 + r.2) * fw
                        && rest.y >= r.1 * fh
                        && rest.y <= (r.1 + r.3) * fh
                });
                assert!(inside, "lingerer rest point {rest:?} outside declared linger regions");
            }
        }
        assert!(found_lingerer, "a 2-hour campus scene should contain at least one lingerer");
    }

    #[test]
    fn scene_contains_static_objects_for_q7_to_q12() {
        let scene = small(SceneConfig::urban());
        let trees = scene.objects.iter().filter(|o| o.class == ObjectClass::Tree).count();
        let lights = scene.objects.iter().filter(|o| o.class == ObjectClass::TrafficLight).count();
        assert_eq!(trees, 6);
        assert_eq!(lights, 1);
        let with_leaves = scene
            .objects
            .iter()
            .filter(|o| o.class == ObjectClass::Tree && o.attributes.has_leaves)
            .count();
        assert_eq!(with_leaves, 4, "urban preset: 4 of 6 trees bloomed (Table 3 Q9)");
    }

    #[test]
    fn highway_region_scheme_is_hard_campus_soft() {
        let highway = small(SceneConfig::highway());
        let campus = small(SceneConfig::campus());
        assert_eq!(highway.region_schemes["default"].boundary, RegionBoundary::Hard);
        assert_eq!(campus.region_schemes["default"].boundary, RegionBoundary::Soft);
        assert_eq!(highway.region_schemes["default"].len(), 2);
    }

    #[test]
    fn diurnal_factor_peaks_midday() {
        assert!(diurnal_factor(6.0) > diurnal_factor(0.5));
        assert!(diurnal_factor(6.0) > diurnal_factor(11.5));
        assert!(diurnal_factor(0.0) >= 0.3);
    }

    #[test]
    fn poisson_sampler_is_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let small_mean: f64 = (0..2000).map(|_| sample_poisson(&mut rng, 3.0) as f64).sum::<f64>() / 2000.0;
        assert!((small_mean - 3.0).abs() < 0.3);
        let big_mean: f64 = (0..500).map(|_| sample_poisson(&mut rng, 500.0) as f64).sum::<f64>() / 500.0;
        assert!((big_mean - 500.0).abs() < 10.0);
    }

    #[test]
    fn lognormal_sampler_matches_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<f64> = (0..4001).map(|_| lognormal(&mut rng, 3.0, 0.5)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 3.0f64.exp()).abs() < 3.0, "median {median} should be near e^3 ≈ 20.1");
    }

    #[test]
    fn arrival_volume_tracks_config() {
        let base = small(SceneConfig::campus());
        let double = SceneGenerator::new(
            SceneConfig::campus().with_duration_hours(0.5).with_arrival_scale(1.0),
        )
        .generate();
        assert!(double.object_count() > base.object_count());
    }

    #[test]
    fn cars_have_plates_and_colors() {
        let scene = small(SceneConfig::highway());
        let car = scene.objects.iter().find(|o| o.class == ObjectClass::Car).expect("highway has cars");
        assert!(car.attributes.plate.starts_with("PLT"));
        assert!(car.attributes.color.is_some());
        assert!(car.attributes.speed_kmh >= 30.0);
    }
}
