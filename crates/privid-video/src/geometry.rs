//! Spatial primitives: points, bounding boxes, frame grids, masks and region
//! schemes.
//!
//! Privid's two utility optimizations (§7) are spatial: *masking* removes
//! fixed pixel regions before the analyst's processor sees a chunk, and
//! *spatial splitting* divides the frame into regions that are aggregated
//! separately. Both are expressed here in terms of a coarse grid of cells
//! (the paper's Appendix F uses 10×10-pixel grid boxes), which is exactly the
//! granularity Algorithm 2 operates on.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A point in frame coordinates (pixels, origin at top-left).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in pixels.
    pub x: f64,
    /// Vertical coordinate in pixels.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Linear interpolation between two points: `t = 0` gives `self`, `t = 1`
    /// gives `other`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point { x: self.x + (other.x - self.x) * t, y: self.y + (other.y - self.y) * t }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The pixel dimensions of a camera frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSize {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
}

impl FrameSize {
    /// Construct a frame size. Panics on zero dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        FrameSize { width, height }
    }

    /// 1920×1080, the resolution of the paper's evaluation videos.
    pub fn full_hd() -> Self {
        FrameSize::new(1920, 1080)
    }

    /// Total pixel count.
    pub fn area(&self) -> f64 {
        self.width as f64 * self.height as f64
    }

    /// Clamp a point into the frame.
    pub fn clamp(&self, p: Point) -> Point {
        Point { x: p.x.clamp(0.0, self.width as f64), y: p.y.clamp(0.0, self.height as f64) }
    }
}

impl Default for FrameSize {
    fn default() -> Self {
        FrameSize::full_hd()
    }
}

/// An axis-aligned bounding box in frame coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge in pixels.
    pub x: f64,
    /// Top edge in pixels.
    pub y: f64,
    /// Width in pixels.
    pub w: f64,
    /// Height in pixels.
    pub h: f64,
}

impl BoundingBox {
    /// Construct a box from its top-left corner and dimensions. Negative
    /// dimensions are clamped to zero.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        BoundingBox { x, y, w: w.max(0.0), h: h.max(0.0) }
    }

    /// Construct a box centred on `center` with the given dimensions.
    pub fn centered(center: Point, w: f64, h: f64) -> Self {
        BoundingBox::new(center.x - w / 2.0, center.y - h / 2.0, w, h)
    }

    /// The centre point of the box.
    pub fn center(&self) -> Point {
        Point { x: self.x + self.w / 2.0, y: self.y + self.h / 2.0 }
    }

    /// Area of the box in square pixels.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Area of the overlap between two boxes.
    pub fn intersection_area(&self, other: &BoundingBox) -> f64 {
        let ix = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let iy = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        if ix <= 0.0 || iy <= 0.0 {
            0.0
        } else {
            ix * iy
        }
    }

    /// Intersection-over-union, the association metric used by SORT/DeepSORT.
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// True if the two boxes overlap at all.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.intersection_area(other) > 0.0
    }

    /// True if the point lies within the box.
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x && p.x <= self.x + self.w && p.y >= self.y && p.y <= self.y + self.h
    }

    /// Clamp the box to lie within a frame, shrinking as necessary.
    pub fn clamp_to(&self, size: &FrameSize) -> BoundingBox {
        let x = self.x.clamp(0.0, size.width as f64);
        let y = self.y.clamp(0.0, size.height as f64);
        let w = (self.x + self.w).clamp(0.0, size.width as f64) - x;
        let h = (self.y + self.h).clamp(0.0, size.height as f64) - y;
        BoundingBox::new(x, y, w, h)
    }
}

/// A grid overlaid on the frame, indexed by `(col, row)` cells.
///
/// Appendix F.2 analyses masks at the granularity of fixed-size grid boxes;
/// this is the Rust equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// The frame the grid is laid over.
    pub frame: FrameSize,
    /// Number of columns in the grid.
    pub cols: u32,
    /// Number of rows in the grid.
    pub rows: u32,
}

/// Identifier of a single grid cell as `(col, row)`.
pub type CellId = (u32, u32);

impl GridSpec {
    /// Construct a grid with the given number of cells.
    pub fn new(frame: FrameSize, cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        GridSpec { frame, cols, rows }
    }

    /// A 10×10-pixel-cell grid, the resolution used by Appendix F / Fig. 11.
    /// For a full-HD frame this yields a 192×108 grid; we cap the grid at
    /// 192×108 cells regardless of frame size to keep the search tractable.
    pub fn fine(frame: FrameSize) -> Self {
        let cols = (frame.width / 10).clamp(1, 192);
        let rows = (frame.height / 10).clamp(1, 108);
        GridSpec::new(frame, cols, rows)
    }

    /// A coarse grid (24×14) adequate for the masking experiments at the
    /// scale of the synthetic scenes; the algorithmic behaviour is identical.
    pub fn coarse(frame: FrameSize) -> Self {
        GridSpec::new(frame, 24, 14)
    }

    /// Width of a single cell in pixels.
    pub fn cell_width(&self) -> f64 {
        self.frame.width as f64 / self.cols as f64
    }

    /// Height of a single cell in pixels.
    pub fn cell_height(&self) -> f64 {
        self.frame.height as f64 / self.rows as f64
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// The cell containing a point (clamped to the frame).
    pub fn cell_of(&self, p: Point) -> CellId {
        let p = self.frame.clamp(p);
        let col = ((p.x / self.cell_width()) as u32).min(self.cols - 1);
        let row = ((p.y / self.cell_height()) as u32).min(self.rows - 1);
        (col, row)
    }

    /// The bounding box of a cell.
    pub fn cell_box(&self, cell: CellId) -> BoundingBox {
        BoundingBox::new(
            cell.0 as f64 * self.cell_width(),
            cell.1 as f64 * self.cell_height(),
            self.cell_width(),
            self.cell_height(),
        )
    }

    /// All cells whose area overlaps the given bounding box.
    pub fn cells_overlapping(&self, bbox: &BoundingBox) -> Vec<CellId> {
        let clamped = bbox.clamp_to(&self.frame);
        if clamped.area() <= 0.0 {
            return Vec::new();
        }
        let c0 = ((clamped.x / self.cell_width()) as u32).min(self.cols - 1);
        let c1 = (((clamped.x + clamped.w) / self.cell_width()).ceil() as u32).min(self.cols);
        let r0 = ((clamped.y / self.cell_height()) as u32).min(self.rows - 1);
        let r1 = (((clamped.y + clamped.h) / self.cell_height()).ceil() as u32).min(self.rows);
        let mut cells = Vec::new();
        for c in c0..c1.max(c0 + 1) {
            for r in r0..r1.max(r0 + 1) {
                cells.push((c, r));
            }
        }
        cells
    }

    /// Iterator over every cell in the grid, row-major.
    pub fn all_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| (c, r)))
    }
}

/// A spatial mask: a set of grid cells whose pixels are removed (blacked out)
/// from every frame before the analyst's processor runs (§7.1).
///
/// An observation is considered *hidden* by the mask when the fraction of its
/// bounding-box area covered by masked cells exceeds [`Mask::COVER_THRESHOLD`]
/// — the synthetic analogue of "the object is no longer recognisable once its
/// pixels are blacked out".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mask {
    /// The grid the mask is defined over.
    pub grid: GridSpec,
    /// The set of masked cells.
    pub cells: BTreeSet<CellId>,
}

impl Mask {
    /// Fraction of a bounding box that must be covered by masked cells for the
    /// observation to be treated as hidden.
    pub const COVER_THRESHOLD: f64 = 0.5;

    /// An empty mask (nothing hidden).
    pub fn empty(grid: GridSpec) -> Self {
        Mask { grid, cells: BTreeSet::new() }
    }

    /// A mask from an explicit set of cells.
    pub fn from_cells(grid: GridSpec, cells: impl IntoIterator<Item = CellId>) -> Self {
        Mask { grid, cells: cells.into_iter().collect() }
    }

    /// Number of masked cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cell is masked.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Fraction of the grid that is masked, in `[0, 1]`.
    pub fn masked_fraction(&self) -> f64 {
        self.cells.len() as f64 / self.grid.cell_count() as f64
    }

    /// Add a cell to the mask.
    pub fn add_cell(&mut self, cell: CellId) {
        self.cells.insert(cell);
    }

    /// Fraction of the bounding box's area covered by masked cells.
    pub fn coverage(&self, bbox: &BoundingBox) -> f64 {
        if self.cells.is_empty() || bbox.area() <= 0.0 {
            return 0.0;
        }
        let mut covered = 0.0;
        for cell in self.grid.cells_overlapping(bbox) {
            if self.cells.contains(&cell) {
                covered += self.grid.cell_box(cell).intersection_area(bbox);
            }
        }
        (covered / bbox.area()).min(1.0)
    }

    /// True if the observation at `bbox` is hidden by this mask: either the
    /// box's centre falls in a masked cell (the object's identifying core is
    /// blacked out) or masked cells cover at least [`Mask::COVER_THRESHOLD`]
    /// of its area.
    pub fn hides(&self, bbox: &BoundingBox) -> bool {
        if self.cells.contains(&self.grid.cell_of(bbox.center())) {
            return true;
        }
        self.coverage(bbox) >= Self::COVER_THRESHOLD
    }
}

/// Whether individuals can cross a region boundary over time (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionBoundary {
    /// Individuals may move between regions (e.g. two crosswalks); tables
    /// built on a soft split must use a chunk size of one frame.
    Soft,
    /// Individuals never cross (e.g. opposite directions of a highway); any
    /// chunk size is allowed.
    Hard,
}

/// A named spatial region of the frame used by spatial splitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Stable region identifier (used as a GROUP BY key).
    pub id: u32,
    /// Human-readable name ("crosswalk-north", "lane-southbound", ...).
    pub name: String,
    /// Spatial extent of the region.
    pub bbox: BoundingBox,
}

/// A video-owner-defined scheme for splitting the frame into regions (§7.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionScheme {
    /// The regions; they need not tile the frame.
    pub regions: Vec<Region>,
    /// Whether individuals can cross between regions.
    pub boundary: RegionBoundary,
}

impl RegionScheme {
    /// Construct a scheme.
    pub fn new(regions: Vec<Region>, boundary: RegionBoundary) -> Self {
        RegionScheme { regions, boundary }
    }

    /// The region containing the centre of a bounding box, if any.
    pub fn region_of(&self, bbox: &BoundingBox) -> Option<&Region> {
        let c = bbox.center();
        self.regions.iter().find(|r| r.bbox.contains_point(c))
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if the scheme has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn bbox_iou_identity_and_disjoint() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(100.0, 100.0, 10.0, 10.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.iou(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn bbox_iou_half_overlap() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 0.0, 10.0, 10.0);
        // intersection 50, union 150
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_clamp_to_frame() {
        let size = FrameSize::new(100, 100);
        let b = BoundingBox::new(-10.0, 90.0, 30.0, 30.0);
        let c = b.clamp_to(&size);
        assert_eq!(c.x, 0.0);
        assert_eq!(c.w, 20.0);
        assert_eq!(c.h, 10.0);
    }

    #[test]
    fn grid_cell_of_corners() {
        let grid = GridSpec::new(FrameSize::new(100, 100), 10, 10);
        assert_eq!(grid.cell_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(grid.cell_of(Point::new(99.9, 99.9)), (9, 9));
        // points outside the frame are clamped
        assert_eq!(grid.cell_of(Point::new(500.0, -5.0)), (9, 0));
    }

    #[test]
    fn grid_cells_overlapping_box() {
        let grid = GridSpec::new(FrameSize::new(100, 100), 10, 10);
        let bbox = BoundingBox::new(5.0, 5.0, 20.0, 10.0);
        let cells = grid.cells_overlapping(&bbox);
        // spans columns 0..=2 and rows 0..=1
        assert!(cells.contains(&(0, 0)));
        assert!(cells.contains(&(2, 1)));
        assert_eq!(cells.len(), 6);
    }

    #[test]
    fn grid_all_cells_count() {
        let grid = GridSpec::new(FrameSize::new(100, 50), 4, 2);
        assert_eq!(grid.all_cells().count(), 8);
        assert_eq!(grid.cell_count(), 8);
    }

    #[test]
    fn mask_coverage_and_hides() {
        let grid = GridSpec::new(FrameSize::new(100, 100), 10, 10);
        let mut mask = Mask::empty(grid);
        let bbox = BoundingBox::new(0.0, 0.0, 20.0, 10.0); // covers cells (0,0) and (1,0)
        assert_eq!(mask.coverage(&bbox), 0.0);
        mask.add_cell((0, 0));
        assert!((mask.coverage(&bbox) - 0.5).abs() < 1e-9);
        assert!(mask.hides(&bbox));
        mask.add_cell((1, 0));
        assert!((mask.coverage(&bbox) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mask_fraction_reflects_cells() {
        let grid = GridSpec::new(FrameSize::new(100, 100), 10, 10);
        let mask = Mask::from_cells(grid, [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
        assert!((mask.masked_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(mask.len(), 5);
        assert!(!mask.is_empty());
    }

    #[test]
    fn region_scheme_assigns_by_center() {
        let scheme = RegionScheme::new(
            vec![
                Region { id: 0, name: "left".into(), bbox: BoundingBox::new(0.0, 0.0, 50.0, 100.0) },
                Region { id: 1, name: "right".into(), bbox: BoundingBox::new(50.0, 0.0, 50.0, 100.0) },
            ],
            RegionBoundary::Hard,
        );
        let left_obj = BoundingBox::centered(Point::new(20.0, 50.0), 10.0, 10.0);
        let right_obj = BoundingBox::centered(Point::new(80.0, 50.0), 10.0, 10.0);
        assert_eq!(scheme.region_of(&left_obj).unwrap().id, 0);
        assert_eq!(scheme.region_of(&right_obj).unwrap().id, 1);
        assert_eq!(scheme.len(), 2);
    }

    #[test]
    fn fine_grid_caps_resolution() {
        let grid = GridSpec::fine(FrameSize::new(4000, 4000));
        assert!(grid.cols <= 192 && grid.rows <= 108);
    }
}
