//! Parametric trajectories describing where an object is during one presence
//! segment.
//!
//! Trajectories are parameterized by a fraction `t ∈ [0, 1]` of the segment's
//! duration, so the same trajectory shape can be reused for segments of any
//! length. The three shapes cover the behaviours the paper's scenes exhibit:
//! pass-through traffic (linear), lingering individuals such as parked cars or
//! people on benches (dwell), and static scene elements such as traffic lights
//! and trees (stationary).

use crate::geometry::{BoundingBox, Point};
use serde::{Deserialize, Serialize};

/// The shape of a trajectory over a single presence segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrajectoryKind {
    /// Straight-line motion from `from` to `to` over the whole segment.
    Linear {
        /// Entry position (bounding-box centre).
        from: Point,
        /// Exit position (bounding-box centre).
        to: Point,
    },
    /// Enter at `entry`, move to `rest` during the first `approach_frac` of
    /// the segment, stay at `rest` until the final `approach_frac`, then move
    /// to `exit`. This is the "car parked for hours but only moving for a
    /// minute" behaviour that motivates masking (§7.1).
    Dwell {
        /// Entry position.
        entry: Point,
        /// Resting position (inside a lingering region).
        rest: Point,
        /// Exit position.
        exit: Point,
        /// Fraction of the segment spent approaching / departing (each).
        approach_frac: f64,
    },
    /// The object never moves (traffic lights, trees).
    Stationary {
        /// Fixed position.
        at: Point,
    },
}

/// A trajectory plus the object's apparent size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// Path shape.
    pub kind: TrajectoryKind,
    /// Bounding-box width in pixels.
    pub width: f64,
    /// Bounding-box height in pixels.
    pub height: f64,
}

impl Trajectory {
    /// A straight-line trajectory.
    pub fn linear(from: Point, to: Point, width: f64, height: f64) -> Self {
        Trajectory { kind: TrajectoryKind::Linear { from, to }, width, height }
    }

    /// A dwell trajectory (enter → rest → exit).
    pub fn dwell(entry: Point, rest: Point, exit: Point, approach_frac: f64, width: f64, height: f64) -> Self {
        let approach_frac = approach_frac.clamp(0.0, 0.5);
        Trajectory { kind: TrajectoryKind::Dwell { entry, rest, exit, approach_frac }, width, height }
    }

    /// A stationary trajectory.
    pub fn stationary(at: Point, width: f64, height: f64) -> Self {
        Trajectory { kind: TrajectoryKind::Stationary { at }, width, height }
    }

    /// Position of the object's centre at segment fraction `t ∈ [0, 1]`.
    pub fn position_at(&self, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        match &self.kind {
            TrajectoryKind::Linear { from, to } => from.lerp(to, t),
            TrajectoryKind::Stationary { at } => *at,
            TrajectoryKind::Dwell { entry, rest, exit, approach_frac } => {
                let a = *approach_frac;
                if a <= 0.0 {
                    return *rest;
                }
                if t < a {
                    entry.lerp(rest, t / a)
                } else if t > 1.0 - a {
                    rest.lerp(exit, (t - (1.0 - a)) / a)
                } else {
                    *rest
                }
            }
        }
    }

    /// Bounding box of the object at segment fraction `t ∈ [0, 1]`.
    pub fn bbox_at(&self, t: f64) -> BoundingBox {
        BoundingBox::centered(self.position_at(t), self.width, self.height)
    }

    /// True if the trajectory's net motion is "northwards", i.e. towards
    /// decreasing `y` (top of frame). Used by the Q13 direction filter.
    pub fn moves_north(&self) -> bool {
        match &self.kind {
            TrajectoryKind::Linear { from, to } => to.y < from.y,
            TrajectoryKind::Dwell { entry, exit, .. } => exit.y < entry.y,
            TrajectoryKind::Stationary { .. } => false,
        }
    }

    /// Approximate path length in pixels (entry → rest → exit for dwell).
    pub fn path_length(&self) -> f64 {
        match &self.kind {
            TrajectoryKind::Linear { from, to } => from.distance(to),
            TrajectoryKind::Stationary { .. } => 0.0,
            TrajectoryKind::Dwell { entry, rest, exit, .. } => entry.distance(rest) + rest.distance(exit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates_endpoints() {
        let t = Trajectory::linear(Point::new(0.0, 100.0), Point::new(200.0, 100.0), 10.0, 20.0);
        assert_eq!(t.position_at(0.0), Point::new(0.0, 100.0));
        assert_eq!(t.position_at(1.0), Point::new(200.0, 100.0));
        assert_eq!(t.position_at(0.5), Point::new(100.0, 100.0));
        let bb = t.bbox_at(0.5);
        assert_eq!(bb.center(), Point::new(100.0, 100.0));
        assert_eq!(bb.w, 10.0);
        assert_eq!(bb.h, 20.0);
    }

    #[test]
    fn dwell_rests_in_the_middle() {
        let t = Trajectory::dwell(
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(100.0, 0.0),
            0.1,
            10.0,
            10.0,
        );
        // Through the middle 80% of the segment the object sits at `rest`.
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            assert_eq!(t.position_at(frac), Point::new(50.0, 50.0), "at frac {frac}");
        }
        assert_eq!(t.position_at(0.0), Point::new(0.0, 0.0));
        assert!(t.position_at(1.0).distance(&Point::new(100.0, 0.0)) < 1e-9);
    }

    #[test]
    fn stationary_never_moves() {
        let t = Trajectory::stationary(Point::new(5.0, 5.0), 4.0, 4.0);
        assert_eq!(t.position_at(0.0), t.position_at(0.7));
        assert_eq!(t.path_length(), 0.0);
        assert!(!t.moves_north());
    }

    #[test]
    fn moves_north_uses_net_motion() {
        let north = Trajectory::linear(Point::new(0.0, 500.0), Point::new(0.0, 100.0), 5.0, 5.0);
        let south = Trajectory::linear(Point::new(0.0, 100.0), Point::new(0.0, 500.0), 5.0, 5.0);
        assert!(north.moves_north());
        assert!(!south.moves_north());
    }

    #[test]
    fn position_clamps_out_of_range_fraction() {
        let t = Trajectory::linear(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0, 1.0);
        assert_eq!(t.position_at(-1.0), t.position_at(0.0));
        assert_eq!(t.position_at(2.0), t.position_at(1.0));
    }

    #[test]
    fn dwell_clamps_approach_fraction() {
        let t = Trajectory::dwell(Point::new(0.0, 0.0), Point::new(1.0, 1.0), Point::new(2.0, 2.0), 0.9, 1.0, 1.0);
        if let TrajectoryKind::Dwell { approach_frac, .. } = t.kind {
            assert!(approach_frac <= 0.5);
        } else {
            panic!("expected dwell");
        }
    }
}
