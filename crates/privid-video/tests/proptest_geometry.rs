//! Property-based tests for the spatial and temporal primitives.

use privid_video::{BoundingBox, ChunkSpec, FrameSize, GridSpec, Mask, Point, TimeSpan};
use proptest::prelude::*;

proptest! {
    /// IoU is symmetric, bounded in [0, 1], and 1 for identical boxes.
    #[test]
    fn iou_properties(x in 0.0..1000.0f64, y in 0.0..1000.0f64, w in 1.0..200.0f64, h in 1.0..200.0f64,
                      dx in -300.0..300.0f64, dy in -300.0..300.0f64) {
        let a = BoundingBox::new(x, y, w, h);
        let b = BoundingBox::new(x + dx, y + dy, w, h);
        let iou_ab = a.iou(&b);
        let iou_ba = b.iou(&a);
        prop_assert!((iou_ab - iou_ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&iou_ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-9);
    }

    /// Every point of the frame maps to a valid grid cell, and the cell's box
    /// contains the point.
    #[test]
    fn grid_cell_contains_point(px in 0.0..1919.0f64, py in 0.0..1079.0f64) {
        let grid = GridSpec::coarse(FrameSize::full_hd());
        let cell = grid.cell_of(Point::new(px, py));
        prop_assert!(cell.0 < grid.cols && cell.1 < grid.rows);
        let bbox = grid.cell_box(cell);
        prop_assert!(bbox.contains_point(Point::new(px, py)));
    }

    /// Mask coverage is monotone: adding cells never reduces coverage, and a
    /// full-grid mask hides every box inside the frame.
    #[test]
    fn mask_coverage_monotone(x in 0.0..1800.0f64, y in 0.0..1000.0f64, w in 5.0..100.0f64, h in 5.0..60.0f64,
                              ncells in 0usize..40) {
        let grid = GridSpec::coarse(FrameSize::full_hd());
        let bbox = BoundingBox::new(x, y, w, h);
        let cells: Vec<_> = grid.all_cells().take(ncells).collect();
        let small = Mask::from_cells(grid, cells.clone());
        let bigger = Mask::from_cells(grid, cells.into_iter().chain(grid.all_cells().take(ncells + 20)));
        prop_assert!(bigger.coverage(&bbox) + 1e-9 >= small.coverage(&bbox));
        let full = Mask::from_cells(grid, grid.all_cells());
        prop_assert!(full.hides(&bbox));
    }

    /// The number of chunk spans equals chunk_count, spans never exceed the
    /// window, and Eq. 6.1 bounds the chunks any rho-length event can span.
    #[test]
    fn chunking_consistency(window in 10.0..5000.0f64, chunk in 1.0..120.0f64, rho in 0.0..600.0f64) {
        let spec = ChunkSpec::contiguous(chunk);
        let w = TimeSpan::from_secs(window);
        let spans = spec.chunk_spans(&w);
        prop_assert_eq!(spans.len() as u64, spec.chunk_count(window));
        for s in &spans {
            prop_assert!(s.start >= w.start && s.end <= w.end);
            // Timestamps are stored at microsecond resolution, so a span's
            // duration can exceed the requested chunk length by sub-microsecond
            // rounding.
            prop_assert!(s.duration() <= chunk + 1e-5);
        }
        // Eq. 6.1: an event of duration rho overlaps at most 1 + ceil(rho/chunk) spans.
        let event = TimeSpan::between_secs(window / 3.0, (window / 3.0 + rho).min(window));
        let overlapping = spans.iter().filter(|s| s.overlaps(&event)).count() as u64;
        prop_assert!(overlapping <= spec.max_chunks_spanned(rho));
    }
}
