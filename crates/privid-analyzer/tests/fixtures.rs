//! Fixture-driven rule tests: every rule gets a violating snippet and a
//! clean one, suppression semantics are exercised end to end, an injected
//! violation in a throwaway workspace proves the CI gate trips, and the
//! final test runs the analyzer over *this* repository and demands zero
//! unsuppressed findings — the self-test the `analyze` CI job relies on.

use privid_analyzer::config::Config;
use privid_analyzer::diag::RuleId;
use privid_analyzer::engine::{check_source, run};

/// A config mirroring the real analyzer.toml's shape, scoped to fixture paths.
fn fixture_config() -> Config {
    Config::parse(
        r#"
        [workspace]
        exclude = ["target/"]

        [lock-order]
        order = ["admission-gate", "camera-registry", "ledger-state"]
        indexed = ["admission-gate"]

        [lock-order.aliases]
        gate = "admission-gate"
        cameras = "camera-registry"
        state = "ledger-state"

        [lock-order.scoped-calls]
        exclusive = "admission-gate"

        [[taint]]
        name = "budget-debit"
        idents = ["check_and_debit"]
        allow = ["src/budget.rs"]

        [[taint]]
        name = "release-construction"
        idents = ["NoisyRelease"]
        construct-only = true
        allow = ["src/session.rs"]

        [panic-freedom]
        paths = ["src/"]

        [f64-exactness]
        files = ["src/record.rs"]
        float-names = ["epsilon"]
        float-suffixes = ["_secs"]
        "#,
    )
    .expect("fixture config parses")
}

fn rules_of(path: &str, src: &str) -> Vec<RuleId> {
    let (findings, _) = check_source(path, src, &fixture_config());
    findings.iter().map(|d| d.rule).collect()
}

// ---- dp-taint -------------------------------------------------------------

#[test]
fn taint_flags_confined_ident_outside_allowlist() {
    let src = "fn f(l: &Ledger) { l.check_and_debit(w, m, e).unwrap(); }\n";
    let rules = rules_of("src/rogue.rs", src);
    assert!(rules.contains(&RuleId::DpTaint), "expected dp-taint, got {rules:?}");
}

#[test]
fn taint_allows_ident_in_allowlisted_module_and_in_tests() {
    assert!(!rules_of("src/budget.rs", "fn f(l: &L) { l.check_and_debit(w, m, e); }\n")
        .contains(&RuleId::DpTaint));
    // tests/ trees are exempt: they exercise the ledger deliberately.
    assert!(rules_of("tests/admission.rs", "fn f(l: &L) { l.check_and_debit(w, m, e); }\n").is_empty());
}

#[test]
fn construct_only_taint_distinguishes_construction_from_type_position() {
    // Construction (struct literal / path) outside the allowlist: flagged.
    assert!(rules_of("src/rogue.rs", "fn f() { let r = NoisyRelease { value: 1.0 }; }\n")
        .contains(&RuleId::DpTaint));
    assert!(rules_of("src/rogue.rs", "fn f() { let r = NoisyRelease::new(1.0); }\n")
        .contains(&RuleId::DpTaint));
    // Merely naming the type (signature, annotation): clean.
    assert!(!rules_of("src/rogue.rs", "fn f(r: &NoisyRelease) -> Vec<NoisyRelease> { todo() }\n")
        .contains(&RuleId::DpTaint));
    // Construction in the allowlisted module: clean.
    assert!(!rules_of("src/session.rs", "fn f() { let r = NoisyRelease { value: 1.0 }; }\n")
        .contains(&RuleId::DpTaint));
}

// ---- lock-order -----------------------------------------------------------

#[test]
fn lock_order_flags_inversion_and_reacquisition() {
    // cameras (rank 1) acquired, then gate (rank 0) inside it: inversion.
    let inverted = "fn f(&self) {\n    let c = self.cameras.write();\n    let g = self.gate.lock();\n}\n";
    assert!(rules_of("src/svc.rs", inverted).contains(&RuleId::LockOrder));

    // Same lock twice while the first guard lives: re-acquisition (deadlock).
    let twice = "fn f(&self) {\n    let a = self.state.lock();\n    let b = self.state.lock();\n}\n";
    assert!(rules_of("src/svc.rs", twice).contains(&RuleId::LockOrder));
}

#[test]
fn lock_order_accepts_declared_order_and_dropped_guards() {
    // gate then cameras then state: the declared order.
    let ordered = "fn f(&self) {\n    let g = self.gate.lock();\n    let c = self.cameras.write();\n    let s = self.state.lock();\n}\n";
    assert!(!rules_of("src/svc.rs", ordered).contains(&RuleId::LockOrder));

    // Statement-extent guard dies at the `;`: the next acquisition is fresh.
    let seq = "fn f(&self) {\n    self.state.lock().insert(k, v);\n    self.state.lock().insert(k2, v2);\n}\n";
    assert!(!rules_of("src/svc.rs", seq).contains(&RuleId::LockOrder));
}

#[test]
fn indexed_family_requires_strictly_ascending_literal_subscripts() {
    // Ascending shard gates — the canonical fleet order: clean.
    let ascending = "fn f(&self) {\n    let a = self.shards[0].gate.lock();\n    let b = self.shards[1].gate.lock();\n}\n";
    assert!(!rules_of("src/svc.rs", ascending).contains(&RuleId::LockOrder), "ascending must pass");

    // Descending: flagged — two admissions overlapping on {0, 1} would
    // contend in opposite orders and deadlock.
    let descending = "fn f(&self) {\n    let a = self.shards[1].gate.lock();\n    let b = self.shards[0].gate.lock();\n}\n";
    assert!(rules_of("src/svc.rs", descending).contains(&RuleId::LockOrder), "descending must be rejected");

    // Equal indexes: a self-deadlock, flagged.
    let equal = "fn f(&self) {\n    let a = self.shards[1].gate.lock();\n    let b = self.shards[1].gate.lock();\n}\n";
    assert!(rules_of("src/svc.rs", equal).contains(&RuleId::LockOrder), "equal must be rejected");

    // A computed second index cannot prove ascending order: flagged.
    let computed = "fn f(&self, k: usize) {\n    let a = self.shards[0].gate.lock();\n    let b = self.shards[k].gate.lock();\n}\n";
    assert!(rules_of("src/svc.rs", computed).contains(&RuleId::LockOrder), "computed index must be rejected");

    // Scoped calls participate in the family too: ascending exclusive() is
    // clean, descending is not.
    let scoped_ok = "fn f(&self) {\n    self.shards[2].admission.exclusive(|| {\n        self.shards[5].admission.exclusive(|| {});\n    });\n}\n";
    assert!(!rules_of("src/svc.rs", scoped_ok).contains(&RuleId::LockOrder), "ascending scoped calls must pass");
    let scoped_bad = "fn f(&self) {\n    self.shards[5].admission.exclusive(|| {\n        self.shards[2].admission.exclusive(|| {});\n    });\n}\n";
    assert!(rules_of("src/svc.rs", scoped_bad).contains(&RuleId::LockOrder), "descending scoped calls must be rejected");

    // Non-indexed locks keep the plain re-acquisition diagnostic even with
    // ascending subscripts: `ledger-state` is not a declared family.
    let non_family = "fn f(&self) {\n    let a = self.cams[0].state.lock();\n    let b = self.cams[1].state.lock();\n}\n";
    assert!(rules_of("src/svc.rs", non_family).contains(&RuleId::LockOrder), "non-family locks must not ascend");
}

#[test]
fn lock_order_sees_through_scoped_calls() {
    // `exclusive` holds the admission gate for its call: acquiring the gate
    // again inside the closure is a re-acquisition.
    let nested = "fn f(&self) {\n    self.admission.exclusive(|| {\n        let g = self.gate.lock();\n    });\n}\n";
    assert!(rules_of("src/svc.rs", nested).contains(&RuleId::LockOrder));
    // Registry work under the scoped gate follows the declared order: clean.
    let fine = "fn f(&self) {\n    self.admission.exclusive(|| {\n        let c = self.cameras.write();\n    });\n}\n";
    assert!(!rules_of("src/svc.rs", fine).contains(&RuleId::LockOrder));
}

// ---- panic-freedom --------------------------------------------------------

#[test]
fn panic_rule_flags_unwrap_expect_macros_and_indexing() {
    let rules = rules_of(
        "src/serve.rs",
        "fn f(v: &[u8]) -> u8 {\n    let x = maybe().unwrap();\n    let y = maybe().expect(\"y\");\n    if bad { panic!(\"no\") }\n    v[0]\n}\n",
    );
    assert_eq!(rules.iter().filter(|r| **r == RuleId::PanicFreedom).count(), 4, "{rules:?}");
}

#[test]
fn panic_rule_skips_tests_out_of_scope_paths_and_non_index_brackets() {
    // #[cfg(test)] items are masked.
    let masked = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { maybe().unwrap(); }\n}\n";
    assert!(rules_of("src/serve.rs", masked).is_empty());
    // Out-of-scope path (not under a configured prefix).
    assert!(rules_of("benches/b.rs", "fn f() { maybe().unwrap(); }\n").is_empty());
    // `let [a, b] = …` destructuring and array types are not index expressions.
    assert!(rules_of("src/serve.rs", "fn f(p: [u8; 2]) { let [a, b] = p; }\n").is_empty());
}

// ---- f64-exactness --------------------------------------------------------

#[test]
fn float_rule_flags_decimal_formatting_in_wire_files_only() {
    // Inline capture of a floatish ident, decimal: flagged.
    assert!(rules_of("src/record.rs", "fn f(epsilon: f64) -> String { format!(\"{epsilon}\") }\n")
        .contains(&RuleId::F64Exactness));
    // Floatish positional argument without .to_bits(): flagged.
    assert!(rules_of("src/record.rs", "fn f(slot_secs: f64) -> String { format!(\"{}\", slot_secs) }\n")
        .contains(&RuleId::F64Exactness));
    // Hex spec of the bits, or routing through .to_bits(): clean.
    assert!(rules_of("src/record.rs", "fn f(bits_secs: u64) -> String { format!(\"{bits_secs:016x}\") }\n").is_empty());
    assert!(rules_of("src/record.rs", "fn f(epsilon: f64) -> String { format!(\"{}\", epsilon.to_bits()) }\n").is_empty());
    // Same decimal formatting outside the configured wire files: clean.
    assert!(rules_of("src/other.rs", "fn f(epsilon: f64) -> String { format!(\"{epsilon}\") }\n").is_empty());
}

// ---- suppressions ---------------------------------------------------------

#[test]
fn suppression_silences_its_line_and_the_next() {
    let cfg = fixture_config();
    // End-of-line form.
    let eol = "fn f() { maybe().unwrap() } // privid-analyzer: allow(panic-freedom) -- proven infallible in tests\n";
    let (findings, suppressed) = check_source("src/serve.rs", eol, &cfg);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
    // Line-above form.
    let above = "// privid-analyzer: allow(panic-freedom) -- proven infallible in tests\nfn f() { maybe().unwrap() }\n";
    let (findings, suppressed) = check_source("src/serve.rs", above, &cfg);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
    // Two lines above: out of range, the finding stands.
    let far = "// privid-analyzer: allow(panic-freedom) -- too far away\n\nfn f() { maybe().unwrap() }\n";
    let (findings, _) = check_source("src/serve.rs", far, &cfg);
    assert_eq!(findings.len(), 1);
}

#[test]
fn suppression_without_reason_or_with_unknown_rule_is_itself_a_finding() {
    let cfg = fixture_config();
    let no_reason = "fn f() { maybe().unwrap() } // privid-analyzer: allow(panic-freedom)\n";
    let (findings, _) = check_source("src/serve.rs", no_reason, &cfg);
    assert!(findings.iter().any(|d| d.rule == RuleId::Suppression), "{findings:?}");
    // The original finding is NOT silenced by a malformed suppression.
    assert!(findings.iter().any(|d| d.rule == RuleId::PanicFreedom), "{findings:?}");

    let unknown = "fn f() {} // privid-analyzer: allow(made-up-rule) -- because\n";
    let (findings, _) = check_source("src/serve.rs", unknown, &cfg);
    assert!(findings.iter().any(|d| d.rule == RuleId::Suppression), "{findings:?}");

    // A suppression finding cannot itself be suppressed.
    let meta = "// privid-analyzer: allow(suppression) -- nice try\nfn f() {} // privid-analyzer: allow(bogus) -- x\n";
    let (findings, _) = check_source("src/serve.rs", meta, &cfg);
    assert!(findings.iter().any(|d| d.rule == RuleId::Suppression), "{findings:?}");
}

// ---- the CI gate, end to end ----------------------------------------------

/// Injecting a violation into a throwaway workspace must produce a finding —
/// which is exactly what makes `privid-analyzer -- check` (and the CI
/// `analyze` job wrapping it) exit non-zero.
#[test]
fn injected_violation_fails_a_workspace_run() {
    let dir = std::env::temp_dir().join(format!("privid-analyzer-gate-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir fixture workspace");
    std::fs::write(src_dir.join("clean.rs"), "fn ok(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").unwrap();
    std::fs::write(src_dir.join("dirty.rs"), "fn bad(x: Option<u8>) -> u8 { x.unwrap() }\n").unwrap();

    let report = run(&dir, &fixture_config()).expect("fixture workspace run");
    assert_eq!(report.files, 2);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, RuleId::PanicFreedom);
    assert!(report.findings[0].file.ends_with("dirty.rs"));

    // Suppressing the injected site (with a reason) makes the same tree clean.
    std::fs::write(
        src_dir.join("dirty.rs"),
        "fn bad(x: Option<u8>) -> u8 { x.unwrap() } // privid-analyzer: allow(panic-freedom) -- fixture\n",
    )
    .unwrap();
    let report = run(&dir, &fixture_config()).expect("fixture workspace re-run");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// The committed analyzer.toml must keep the storage `Vfs` layer inside the
/// panic-freedom surface: `FaultVfs` and friends live on the serving path
/// (every WAL byte flows through them), so a stray `unwrap` there is a
/// production panic, not test scaffolding. Guards against the coverage
/// quietly shrinking when storage modules move.
#[test]
fn committed_config_covers_storage_vfs_modules_for_panic_freedom() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/privid-analyzer");
    let toml = std::fs::read_to_string(root.join("analyzer.toml")).expect("committed analyzer.toml");
    let cfg = Config::parse(&toml).expect("committed analyzer.toml parses");

    // An unwrap in non-test vfs code is flagged under the committed config…
    let dirty = "fn decide(&self) { self.plan.lock().unwrap(); }\n";
    let (findings, _) = check_source("crates/privid-store/src/vfs.rs", dirty, &cfg);
    assert!(
        findings.iter().any(|d| d.rule == RuleId::PanicFreedom),
        "committed config no longer covers privid-store vfs code: {findings:?}"
    );

    // …while the module's #[cfg(test)] fixtures stay exempt.
    let test_only = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { plan().lock().unwrap(); }\n}\n";
    let (findings, _) = check_source("crates/privid-store/src/vfs.rs", test_only, &cfg);
    assert!(findings.is_empty(), "{findings:?}");

    // The fault-plan mutex is part of the declared lock order (leaf rank):
    // nesting another declared lock under it must be an inversion.
    let nested = "fn f(&self) {\n    let p = self.plan.lock();\n    let i = self.inner.lock();\n}\n";
    let (findings, _) = check_source("crates/privid-store/src/vfs.rs", nested, &cfg);
    assert!(
        findings.iter().any(|d| d.rule == RuleId::LockOrder),
        "fault-plan must be a leaf in the committed lock order: {findings:?}"
    );
}

/// The committed analyzer.toml must cover the aggregate-state cache (the
/// second cache tier added with the incremental-fold path): its mutex is a
/// declared leaf in the lock order, and the module sits inside the
/// panic-freedom surface. Guards against the new module silently escaping
/// the privacy-review allowlists.
#[test]
fn committed_config_covers_the_aggregate_cache_module() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/privid-analyzer");
    let toml = std::fs::read_to_string(root.join("analyzer.toml")).expect("committed analyzer.toml");
    let cfg = Config::parse(&toml).expect("committed analyzer.toml parses");

    // An unwrap in non-test aggcache code is flagged under the committed config.
    let dirty = "fn probe(&self) { self.agg_entries.lock().unwrap(); }\n";
    let (findings, _) = check_source("crates/privid-core/src/aggcache.rs", dirty, &cfg);
    assert!(
        findings.iter().any(|d| d.rule == RuleId::PanicFreedom),
        "committed config no longer covers privid-core aggcache code: {findings:?}"
    );

    // `agg-cache-entries` is declared: acquiring a registry lock (which every
    // rank orders *before* the caches) under it must be an inversion…
    let nested = "fn f(&self) {\n    let a = self.agg_entries.lock();\n    let c = self.cameras.write();\n}\n";
    let (findings, _) = check_source("crates/privid-core/src/aggcache.rs", nested, &cfg);
    assert!(
        findings.iter().any(|d| d.rule == RuleId::LockOrder),
        "agg-cache-entries must be a declared leaf in the committed lock order: {findings:?}"
    );

    // …and it is ordered after the chunk-cache mutex, so probing tier 2 while
    // holding tier 1 follows the declared order (the reverse would not).
    let tiered = "fn f(&self) {\n    let c = self.entries.lock();\n    let a = self.agg_entries.lock();\n}\n";
    let (findings, _) = check_source("crates/privid-core/src/aggcache.rs", tiered, &cfg);
    assert!(
        !findings.iter().any(|d| d.rule == RuleId::LockOrder),
        "cache-entries before agg-cache-entries should follow the declared order: {findings:?}"
    );
    let inverted = "fn f(&self) {\n    let a = self.agg_entries.lock();\n    let c = self.entries.lock();\n}\n";
    let (findings, _) = check_source("crates/privid-core/src/aggcache.rs", inverted, &cfg);
    assert!(
        findings.iter().any(|d| d.rule == RuleId::LockOrder),
        "agg-cache-entries before cache-entries must be an inversion: {findings:?}"
    );
}

/// The committed analyzer.toml must declare the per-shard admission gates as
/// an indexed lock family: the fleet's deadlock-freedom argument rests on
/// every multi-shard admission taking the gates in ascending shard order,
/// and this is the machine check that keeps literal acquisition sites
/// honest. Guards against the family declaration quietly disappearing.
#[test]
fn committed_config_rejects_out_of_order_shard_gate_acquisition() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/privid-analyzer");
    let toml = std::fs::read_to_string(root.join("analyzer.toml")).expect("committed analyzer.toml");
    let cfg = Config::parse(&toml).expect("committed analyzer.toml parses");
    assert!(
        cfg.lock_indexed.iter().any(|l| l == "admission-gate"),
        "admission-gate must be declared an indexed family: {:?}",
        cfg.lock_indexed
    );

    // Descending shard gates under the committed config: an inversion.
    let descending =
        "fn f(&self) {\n    self.shards[1].admission.exclusive(|| {\n        self.shards[0].admission.exclusive(|| {});\n    });\n}\n";
    let (findings, _) = check_source("crates/privid-core/src/service.rs", descending, &cfg);
    assert!(
        findings.iter().any(|d| d.rule == RuleId::LockOrder),
        "committed config must reject out-of-order shard gate acquisition: {findings:?}"
    );

    // Ascending shard gates: the canonical order, clean.
    let ascending =
        "fn f(&self) {\n    self.shards[0].admission.exclusive(|| {\n        self.shards[1].admission.exclusive(|| {});\n    });\n}\n";
    let (findings, _) = check_source("crates/privid-core/src/service.rs", ascending, &cfg);
    assert!(
        !findings.iter().any(|d| d.rule == RuleId::LockOrder),
        "ascending shard gate acquisition must stay clean: {findings:?}"
    );
}

// ---- the workspace self-test ----------------------------------------------

/// The analyzer, run over this repository with the committed analyzer.toml,
/// must report zero unsuppressed findings. This is the test-suite mirror of
/// the CI `analyze` gate: a regression in either the rules or the code shows
/// up here before it shows up in CI.
#[test]
fn workspace_is_clean_under_committed_config() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/privid-analyzer")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("analyzer.toml")).expect("committed analyzer.toml");
    let cfg = Config::parse(&toml).expect("committed analyzer.toml parses");
    let report = run(&root, &cfg).expect("workspace walk");
    assert!(report.files > 50, "walk looks truncated: {} files", report.files);
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings in the workspace:\n{}",
        report
            .findings
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
