//! A hand-rolled Rust lexer: just enough token structure for lexical lint
//! rules, with the three classically fiddly cases done properly — raw strings
//! (`r#"…"#` with any number of hashes), nested block comments
//! (`/* /* */ */`), and `'a` lifetime vs `'a'` char disambiguation.
//!
//! The build environment has no registry access, so `syn`/`proc-macro2` are
//! unavailable by design; the rules downstream only need identifiers,
//! punctuation, literals, and comments with accurate line numbers.

/// The coarse classification a token receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `slots`, `r#ident` with the `r#` stripped).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading `'` stripped).
    Lifetime,
    /// Character or byte literal, quotes included (`'x'`, `b'\n'`).
    Char,
    /// String or byte-string literal; `text` holds the *contents* (no quotes).
    Str,
    /// Raw (byte-)string literal; `text` holds the contents (no delimiters).
    RawStr,
    /// Numeric literal (integers, floats, suffixed forms).
    Num,
    /// `// …` comment (incl. `///` and `//!`); `text` is everything after `//`.
    LineComment,
    /// `/* … */` comment (nesting-aware); `text` is the interior.
    BlockComment,
    /// Any other single character (`.`, `{`, `!`, …).
    Punct,
}

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each class stores).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for comment tokens, which rules skip but the suppression layer reads.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `src` into a token stream. Unterminated constructs are closed at EOF
/// rather than reported — the compiler owns syntax errors; the linter only
/// needs to stay in sync on well-formed input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string(line, TokKind::Str);
                }
                '\'' => self.lifetime_or_char(line),
                'r' | 'b' if self.raw_or_special(line) => {}
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    /// Block comments nest in Rust: `/* outer /* inner */ still outer */`.
    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// Called with `pos` on the opening `"` already consumed.
    fn string(&mut self, line: u32, kind: TokKind) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    // Keep the escape verbatim; rules that scan string
                    // contents (format captures) never look inside escapes.
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(kind, text, line);
    }

    /// Raw strings `r"…"`, `r#"…"#`, byte strings `b"…"`, raw byte strings
    /// `br#"…"#`, byte chars `b'…'`, and raw identifiers `r#ident`. Returns
    /// false when the leading `r`/`b` is just an ordinary identifier start.
    fn raw_or_special(&mut self, line: u32) -> bool {
        let c0 = self.peek(0).unwrap_or(' ');
        let (skip, next) = match (c0, self.peek(1)) {
            ('b', Some('r')) => (2, self.peek(2)),
            _ => (1, self.peek(1)),
        };
        match (c0, next) {
            // b'x' byte char
            ('b', Some('\'')) if skip == 1 => {
                self.bump();
                self.bump();
                self.char_literal(line, "b'".to_string());
                true
            }
            // b"…" byte string
            ('b', Some('"')) if skip == 1 => {
                self.bump();
                self.bump();
                self.string(line, TokKind::Str);
                true
            }
            // r"…" / br"…" / r#"…"# / br##"…"## / r#ident
            (_, Some('#')) | (_, Some('"')) => {
                let mut hashes = 0usize;
                let mut i = skip;
                while self.peek(i) == Some('#') {
                    hashes += 1;
                    i += 1;
                }
                match self.peek(i) {
                    Some('"') => {
                        for _ in 0..=i {
                            self.bump();
                        }
                        self.raw_string(line, hashes);
                        true
                    }
                    // r#ident — raw identifier (only a single hash is legal)
                    Some(c) if c0 == 'r' && skip == 1 && hashes == 1 && (c == '_' || c.is_alphabetic()) => {
                        self.bump();
                        self.bump();
                        self.ident(line);
                        true
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Called with everything through the opening quote consumed.
    fn raw_string(&mut self, line: u32, hashes: usize) {
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote counts only when followed by `hashes` hashes.
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::RawStr, text, line);
    }

    /// `'` starts either a lifetime (`'a`, `'static`, `'_`) or a char literal
    /// (`'a'`, `'\n'`). The tell: after the ident-like run there is a closing
    /// `'` for chars and none for lifetimes; escapes are always chars.
    fn lifetime_or_char(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => self.char_literal(line, "'".to_string()),
            Some(c) if c == '_' || c.is_alphabetic() => {
                // 'a'  → char; 'a / 'abc / 'a> → lifetime.
                if self.peek(1) == Some('\'') {
                    self.char_literal(line, "'".to_string());
                } else {
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Lifetime, name, line);
                }
            }
            // Degenerate chars like '(' or '0' (and unterminated tails).
            _ => self.char_literal(line, "'".to_string()),
        }
    }

    /// Called with the opening quote consumed; `text` seeds the prefix.
    fn char_literal(&mut self, line: u32, mut text: String) {
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..10` does not (range operator).
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // exponent sign: 1e-3
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"a "quoted" body"#;"####);
        assert!(toks.contains(&(TokKind::RawStr, "a \"quoted\" body".to_string())), "{toks:?}");
        // Zero-hash raw string.
        let toks = kinds(r#"r"plain""#);
        assert_eq!(toks, vec![(TokKind::RawStr, "plain".to_string())]);
        // Two hashes, with an embedded "# that must NOT close it.
        let toks = kinds("r##\"has \"# inside\"##");
        assert_eq!(toks, vec![(TokKind::RawStr, "has \"# inside".to_string())]);
        // Raw byte string.
        let toks = kinds("br#\"bytes\"#");
        assert_eq!(toks, vec![(TokKind::RawStr, "bytes".to_string())]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokKind::Ident, "a".to_string()));
        assert_eq!(toks[1], (TokKind::BlockComment, " outer /* inner */ still outer ".to_string()));
        assert_eq!(toks[2], (TokKind::Ident, "b".to_string()));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static_lt; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 3, "{toks:?}"); // 'a, 'a, 'static_lt
        assert_eq!(chars, vec![&(TokKind::Char, "'a'".to_string())]);
    }

    #[test]
    fn char_escapes() {
        let toks = kinds(r"let nl = '\n'; let q = '\''; let u = '\u{1F600}'; let b = b'\xFF';");
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Char).map(|t| t.1.as_str()).collect();
        assert_eq!(chars, vec![r"'\n'", r"'\''", r"'\u{1F600}'", r"b'\xFF'"]);
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#"let s = "with \" quote and \\ backslash";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs, vec![&(TokKind::Str, r#"with \" quote and \\ backslash"#.to_string())]);
    }

    #[test]
    fn line_numbers_cross_multiline_tokens() {
        let src = "line1\n/* spans\nlines */\nident_on_4";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].text, "ident_on_4");
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn raw_ident_and_numbers() {
        let toks = kinds("let r#fn = 0x1F; let range = 0..10; let f = 1.5e-3f64;");
        assert!(toks.contains(&(TokKind::Ident, "fn".to_string())));
        assert!(toks.contains(&(TokKind::Num, "0x1F".to_string())));
        assert!(toks.contains(&(TokKind::Num, "0".to_string())));
        assert!(toks.contains(&(TokKind::Num, "10".to_string())));
        assert!(toks.contains(&(TokKind::Num, "1.5e-3f64".to_string())));
    }

    #[test]
    fn comment_right_before_eof_and_doc_comments() {
        let toks = kinds("/// doc\n//! inner\ncode // trailing");
        assert_eq!(toks[0], (TokKind::LineComment, "/ doc".to_string()));
        assert_eq!(toks[1], (TokKind::LineComment, "! inner".to_string()));
        assert_eq!(toks[2], (TokKind::Ident, "code".to_string()));
        assert_eq!(toks[3], (TokKind::LineComment, " trailing".to_string()));
    }
}
