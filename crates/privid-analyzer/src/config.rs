//! `analyzer.toml` — the committed allowlist configuration.
//!
//! The build environment has no registry access, so this module carries a
//! hand-rolled parser for the small TOML subset the config needs: `[section]`
//! and `[[array-of-tables]]` headers, `key = "string"`, and
//! `key = ["string", …]` arrays (single-line or multi-line). Comments start
//! with `#`. Anything outside that subset is a hard error — a config typo
//! must fail CI loudly, not silently relax a rule.

use std::collections::BTreeMap;

/// One taint group: a set of identifiers that may only appear in the listed
/// files (path suffixes, `/`-separated, relative to the workspace root).
#[derive(Debug, Clone, Default)]
pub struct TaintGroup {
    /// Short label used in diagnostics (e.g. `budget-debit`).
    pub name: String,
    /// Identifiers whose use is confined.
    pub idents: Vec<String>,
    /// Only flag an identifier when it is *used as a path or constructed*
    /// (followed by `::` or a struct-literal `{`), not merely named in a
    /// type position. Set for release-type constructors.
    pub construct_only: bool,
    /// Path suffixes where the identifiers are allowed.
    pub allow: Vec<String>,
}

/// Parsed `analyzer.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path substrings excluded from the workspace walk entirely.
    pub exclude: Vec<String>,
    /// The declared global lock order, most-outer first. Position in this
    /// list is the partial order the lock-order rule validates against.
    pub lock_order: Vec<String>,
    /// Locks that are *indexed families*: N instances ranked by a literal
    /// subscript (e.g. per-shard admission gates). Re-acquiring a family
    /// member while another is held is legal only when both carry literal
    /// indexes and the incoming index is strictly greater — the canonical
    /// ascending shard order.
    pub lock_indexed: Vec<String>,
    /// Receiver-identifier (or gate-method) → declared lock name.
    pub lock_aliases: BTreeMap<String, String>,
    /// Methods that hold a declared lock for the duration of their call
    /// (e.g. `exclusive` holds the admission gate around its closure).
    pub lock_scoped_calls: BTreeMap<String, String>,
    /// Taint groups for the dp-taint rule.
    pub taint: Vec<TaintGroup>,
    /// Path prefixes the panic-freedom rule covers (serving-path crates).
    pub panic_paths: Vec<String>,
    /// Path suffixes the f64-exactness rule covers (wire/WAL code).
    pub float_files: Vec<String>,
    /// Identifier names treated as f64-valued by the f64-exactness rule.
    pub float_names: Vec<String>,
    /// Identifier suffixes treated as f64-valued (e.g. `_secs`).
    pub float_suffixes: Vec<String>,
}

impl Config {
    /// Parse the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = name.trim().to_string();
                if section == "taint" {
                    cfg.taint.push(TaintGroup::default());
                } else {
                    return Err(format!("analyzer.toml:{lineno}: unknown array table [[{section}]]"));
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("analyzer.toml:{lineno}: expected `key = value`, got `{line}`"))?;
            // Multi-line arrays: keep consuming lines until the bracket closes.
            if value.starts_with('[') && !balanced(&value) {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if balanced(&value) {
                        break;
                    }
                }
            }
            cfg.assign(&section, &key, &value).map_err(|e| format!("analyzer.toml:{lineno}: {e}"))?;
        }
        Ok(cfg)
    }

    fn assign(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        match (section, key) {
            ("workspace", "exclude") => self.exclude = parse_array(value)?,
            ("lock-order", "order") => self.lock_order = parse_array(value)?,
            ("lock-order", "indexed") => self.lock_indexed = parse_array(value)?,
            ("lock-order.aliases", _) => {
                self.lock_aliases.insert(key.to_string(), parse_string(value)?);
            }
            ("lock-order.scoped-calls", _) => {
                self.lock_scoped_calls.insert(key.to_string(), parse_string(value)?);
            }
            ("taint", _) => {
                let group = self.taint.last_mut().ok_or("taint key outside [[taint]]")?;
                match key {
                    "name" => group.name = parse_string(value)?,
                    "idents" => group.idents = parse_array(value)?,
                    "allow" => group.allow = parse_array(value)?,
                    "construct-only" => group.construct_only = parse_bool(value)?,
                    _ => return Err(format!("unknown [[taint]] key `{key}`")),
                }
            }
            ("panic-freedom", "paths") => self.panic_paths = parse_array(value)?,
            ("f64-exactness", "files") => self.float_files = parse_array(value)?,
            ("f64-exactness", "float-names") => self.float_names = parse_array(value)?,
            ("f64-exactness", "float-suffixes") => self.float_suffixes = parse_array(value)?,
            _ => return Err(format!("unknown key `{key}` in section [{section}]")),
        }
        Ok(())
    }

    /// Position of `lock` in the declared order, if declared.
    pub fn lock_rank(&self, lock: &str) -> Option<usize> {
        self.lock_order.iter().position(|l| l == lock)
    }

    /// True when an identifier counts as f64-valued for the exactness rule.
    pub fn is_floatish(&self, ident: &str) -> bool {
        self.float_names.iter().any(|n| n == ident) || self.float_suffixes.iter().any(|s| ident.ends_with(s.as_str()))
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string is content, not a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{v}`"))
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        v => Err(format!("expected true/false, got `{v}`")),
    }
}

fn parse_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{v}`"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let after = rest.strip_prefix('"').ok_or_else(|| format!("expected a quoted element in `{inner}`"))?;
        let end = after.find('"').ok_or_else(|| format!("unterminated string in `{inner}`"))?;
        out.push(after[..end].to_string());
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_shape() {
        let cfg = Config::parse(
            r#"
            # comment
            [workspace]
            exclude = ["target/", "shims/"]

            [lock-order]
            order = [
                "admission-gate",  # outermost
                "camera-registry",
            ]
            indexed = ["admission-gate"]

            [lock-order.aliases]
            gate = "admission-gate"
            cameras = "camera-registry"

            [lock-order.scoped-calls]
            exclusive = "admission-gate"

            [[taint]]
            name = "budget-debit"
            idents = ["check_and_debit"]
            allow = ["crates/privid-core/src/budget.rs"]

            [[taint]]
            name = "release-construction"
            idents = ["NoisyRelease"]
            construct-only = true
            allow = ["crates/privid-core/src/session.rs"]

            [panic-freedom]
            paths = ["crates/privid-core/src/"]

            [f64-exactness]
            files = ["crates/privid-store/src/record.rs"]
            float-names = ["epsilon"]
            float-suffixes = ["_secs"]
            "#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["target/", "shims/"]);
        assert_eq!(cfg.lock_order, vec!["admission-gate", "camera-registry"]);
        assert_eq!(cfg.lock_indexed, vec!["admission-gate"]);
        assert_eq!(cfg.lock_aliases.get("cameras").unwrap(), "camera-registry");
        assert_eq!(cfg.lock_scoped_calls.get("exclusive").unwrap(), "admission-gate");
        assert_eq!(cfg.taint.len(), 2);
        assert!(cfg.taint[1].construct_only);
        assert_eq!(cfg.lock_rank("admission-gate"), Some(0));
        assert!(cfg.is_floatish("slot_secs"));
        assert!(cfg.is_floatish("epsilon"));
        assert!(!cfg.is_floatish("offset"));
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Config::parse("[workspace]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("[[mystery]]\n").is_err());
        assert!(Config::parse("[lock-order]\norder = 3\n").is_err());
    }
}
