//! The engine: workspace walk, `#[cfg(test)]` masking, suppression
//! handling, and rule dispatch.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{self, FileCx};

/// The outcome of one full run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by file then line.
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by a valid inline suppression.
    pub suppressed: usize,
    /// Number of `.rs` files analyzed.
    pub files: usize,
}

/// Analyze every `.rs` file under `root` (honoring the config's excludes).
pub fn run(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect(root, root, cfg, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let (mut findings, suppressed) = check_source(&rel_str, &src, cfg);
        report.findings.append(&mut findings);
        report.suppressed += suppressed;
        report.files += 1;
    }
    report.findings.sort();
    Ok(report)
}

fn collect(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if rel.starts_with('.') || cfg.exclude.iter().any(|e| rel.contains(e.as_str()) || format!("{rel}/").ends_with(e)) {
            continue;
        }
        if entry.file_type()?.is_dir() {
            collect(root, &path, cfg, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Analyze one file's source. Returns (unsuppressed findings, suppressed count).
/// Exposed for the fixture-driven rule tests.
pub fn check_source(path: &str, src: &str, cfg: &Config) -> (Vec<Diagnostic>, usize) {
    let all = lexer::lex(src);
    let (suppressions, mut findings) = parse_suppressions(path, &all);
    let sig: Vec<Tok> = all.into_iter().filter(|t| !t.is_comment()).collect();
    let is_test = test_mask(&sig);
    let cx = FileCx { path, toks: &sig, is_test: &is_test, cfg };
    let raw = rules::check_all(&cx);
    let mut suppressed = 0usize;
    for d in raw {
        let covered = suppressions
            .iter()
            .any(|s| s.rules.contains(&d.rule) && (s.line == d.line || s.line + 1 == d.line));
        if covered {
            suppressed += 1;
        } else {
            findings.push(d);
        }
    }
    (findings, suppressed)
}

struct Suppression {
    line: u32,
    rules: Vec<RuleId>,
}

/// Parse `// privid-analyzer: allow(rule-id[, rule-id]) -- reason` comments.
/// A suppression covers its own line and the next one, so it can sit at the
/// end of the offending line or on its own line directly above. A missing
/// `-- reason`, an unknown rule id, or a malformed body is itself a finding
/// (rule `suppression`) — and that finding cannot be suppressed.
fn parse_suppressions(path: &str, toks: &[Tok]) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut out = Vec::new();
    let mut diags = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        let Some(rest) = t.text.trim().strip_prefix("privid-analyzer:") else {
            continue;
        };
        let bad = |msg: &str| Diagnostic {
            file: path.to_string(),
            line: t.line,
            rule: RuleId::Suppression,
            message: msg.to_string(),
        };
        let rest = rest.trim();
        let Some(body) = rest.strip_prefix("allow(") else {
            diags.push(bad("malformed suppression; expected `privid-analyzer: allow(rule-id) -- reason`"));
            continue;
        };
        let Some((ids, tail)) = body.split_once(')') else {
            diags.push(bad("malformed suppression; missing `)` after rule list"));
            continue;
        };
        let reason = tail.trim_start().strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(bad("suppression without a `-- reason`; every allow must say why"));
            continue;
        }
        let mut rules = Vec::new();
        let mut ok = true;
        for id in ids.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match RuleId::parse(id) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(bad(&format!("unknown rule id `{id}` in suppression")));
                    ok = false;
                }
            }
        }
        if ok && !rules.is_empty() {
            out.push(Suppression { line: t.line, rules });
        } else if rules.is_empty() && ok {
            diags.push(bad("suppression lists no rule ids"));
        }
    }
    (out, diags)
}

/// Mark the tokens belonging to `#[cfg(test)]` / `#[test]` items (the
/// attribute through the end of the annotated item). `#[cfg(not(test))]`
/// does not count.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_p(toks, i, '#') && is_p(toks, i + 1, '[')) {
            i += 1;
            continue;
        }
        let attr_end = match matching(toks, i + 1, '[', ']') {
            Some(j) => j,
            None => break,
        };
        let attr = &toks[i + 2..attr_end];
        let names: Vec<&str> = attr.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        let is_test_attr = names.contains(&"test") && !names.contains(&"not");
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then mark through the item's end:
        // its first top-level `{ … }` block, or its terminating `;`.
        let mut k = attr_end + 1;
        while is_p(toks, k, '#') && is_p(toks, k + 1, '[') {
            match matching(toks, k + 1, '[', ']') {
                Some(j) => k = j + 1,
                None => break,
            }
        }
        let mut end = k;
        while end < toks.len() {
            if is_p(toks, end, ';') {
                break;
            }
            if is_p(toks, end, '{') {
                end = matching(toks, end, '{', '}').unwrap_or(toks.len() - 1);
                break;
            }
            end += 1;
        }
        let end = end.min(toks.len() - 1);
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

fn is_p(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch))
}

/// Index of the punct matching the opener at `open_idx`.
fn matching(toks: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.text.len() == 1 && t.text.starts_with(open) {
                depth += 1;
            } else if t.text.len() == 1 && t.text.starts_with(close) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}
