//! Diagnostics: typed rule IDs and the `file:line` findings rules emit.

use std::fmt;

/// Every rule the engine ships, plus the meta-rule for malformed
/// suppressions (which is itself not suppressible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// DP release-path taint: debits, release construction, and rand/noise
    /// sampling confined to allowlisted modules.
    DpTaint,
    /// Nested guard acquisitions must follow the declared partial order.
    LockOrder,
    /// No `unwrap`/`expect`/panic-macros/slice-index in serving-path code.
    PanicFreedom,
    /// No decimal formatting of f64 in wire/WAL code (`to_bits` mandated).
    F64Exactness,
    /// Malformed or reason-less suppression comments.
    Suppression,
}

impl RuleId {
    /// The id spelled in diagnostics and `allow(...)` suppressions.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::DpTaint => "dp-taint",
            RuleId::LockOrder => "lock-order",
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::F64Exactness => "f64-exactness",
            RuleId::Suppression => "suppression",
        }
    }

    /// Parse a rule id as written inside `allow(...)`.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "dp-taint" => Some(RuleId::DpTaint),
            "lock-order" => Some(RuleId::LockOrder),
            "panic-freedom" => Some(RuleId::PanicFreedom),
            "f64-exactness" => Some(RuleId::F64Exactness),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}
