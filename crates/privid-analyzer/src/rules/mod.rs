//! The four lint rules, each a pure function from a lexed file to findings.
//!
//! Rules see only *significant* tokens (comments are stripped by the engine;
//! the suppression layer reads them separately) plus a parallel `is_test`
//! mask covering `#[cfg(test)]` / `#[test]` items.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

pub mod floats;
pub mod locks;
pub mod panics;
pub mod taint;

/// Everything a rule needs to know about one file.
pub struct FileCx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Significant (non-comment) tokens.
    pub toks: &'a [Tok],
    /// Parallel to `toks`: true inside `#[cfg(test)]` / `#[test]` items.
    pub is_test: &'a [bool],
    /// The committed allowlist config.
    pub cfg: &'a Config,
}

impl FileCx<'_> {
    /// True for paths that are test/bench/example code wholesale — rules
    /// about serving-path discipline do not apply there.
    pub fn is_test_path(&self) -> bool {
        let p = self.path;
        p.starts_with("tests/")
            || p.starts_with("examples/")
            || p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
    }

    pub(crate) fn diag(&self, rule: crate::diag::RuleId, line: u32, message: String) -> Diagnostic {
        Diagnostic { file: self.path.to_string(), line, rule, message }
    }
}

/// Is token `i` a punct with exactly this text?
pub(crate) fn is_punct(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch))
}

/// Is token `i` an identifier?
pub(crate) fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| (t.kind == TokKind::Ident).then_some(t.text.as_str()))
}

/// Run every rule over one file.
pub fn check_all(cx: &FileCx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(taint::check(cx));
    out.extend(locks::check(cx));
    out.extend(panics::check(cx));
    out.extend(floats::check(cx));
    out
}
