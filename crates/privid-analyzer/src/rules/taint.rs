//! Rule `dp-taint`: confines the identifiers that *spend ε or mint released
//! values* to the allowlisted modules.
//!
//! Three families are confined (see `analyzer.toml`): `BudgetLedger` debit
//! entry points, raw release-type construction (`NoisyRelease` /
//! `NoisyValue` / `QueryResult`), and rand/noise sampling. A front-end that
//! wants to emit a value has no lexical way to reach one of these names
//! without either living in an allowlisted module or carrying a visible,
//! reviewed suppression.

use super::FileCx;
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokKind;

/// Identifiers that, when seen *before* a confined name, mark a type
/// position or a definition rather than a use that can mint a value.
const NON_CONSTRUCT_PREFIX: &[&str] =
    &[">", ":", "<", "&", "as", "impl", "dyn", "struct", "enum", "union", "trait", "for", "let", "use", "mod", "where"];

/// Flag confined identifiers used outside their allowlisted modules.
pub fn check(cx: &FileCx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cx.is_test_path() {
        return out;
    }
    for (i, tok) in cx.toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || cx.is_test[i] {
            continue;
        }
        for group in &cx.cfg.taint {
            if !group.idents.iter().any(|id| id == &tok.text) {
                continue;
            }
            if group.construct_only && !is_construction(cx, i) {
                continue;
            }
            if group.allow.iter().any(|a| cx.path.ends_with(a.as_str())) {
                continue;
            }
            out.push(cx.diag(
                RuleId::DpTaint,
                tok.line,
                format!(
                    "`{}` (group `{}`) used outside its allowlisted modules [{}]",
                    tok.text,
                    group.name,
                    group.allow.join(", ")
                ),
            ));
        }
    }
    out
}

/// A confined type name counts as *used for construction* when it is
/// followed by a struct literal `{` or a `::` path segment, and is not in an
/// obvious type/definition position. This is deliberately lexical: see the
/// crate docs for why module granularity (not call-graph precision) is the
/// contract.
fn is_construction(cx: &FileCx<'_>, i: usize) -> bool {
    let followed = super::is_punct(cx.toks, i + 1, '{')
        || (super::is_punct(cx.toks, i + 1, ':') && super::is_punct(cx.toks, i + 2, ':'));
    if !followed {
        return false;
    }
    if i > 0 {
        let prev = &cx.toks[i - 1];
        if NON_CONSTRUCT_PREFIX.contains(&prev.text.as_str()) {
            return false;
        }
    }
    true
}
