//! Rule `lock-order`: nested guard acquisitions must follow the partial
//! order declared in `analyzer.toml`.
//!
//! The analysis is per-function and lexical. A guard enters the stack when a
//! `.lock()` / `.read()` / `.write()` call (empty argument list — I/O traits
//! take arguments, sync primitives do not) or a declared scoped-call method
//! (e.g. `exclusive`, which holds the admission gate around its closure) is
//! seen, and leaves it when its lexical extent ends:
//!
//! - `let`-bound guards live until the enclosing block closes;
//! - temporary guards (no `let` in the statement) die at the statement's `;`;
//! - scoped-call guards die at the call's closing parenthesis.
//!
//! Cross-function nesting (a function that acquires a lock calling another
//! that acquires a second) is invisible here by design — the same
//! module-granularity trade-off the crate docs describe. The declared order
//! plus the per-site audit comments are the contract that keeps those
//! compositions safe.
//!
//! ## Indexed lock families
//!
//! A lock named in `[lock-order] indexed` is a *family*: N instances of the
//! same lock ranked by index (the sharded service's per-shard admission
//! gates). Holding one member while acquiring another is legal **only** when
//! both acquisitions carry a literal subscript in their receiver chain
//! (`shards[0]… then shards[1]…`) and the indexes strictly ascend — the
//! canonical fleet order that makes overlapping multi-shard admissions
//! deadlock-free. Equal or descending indexes, or a second acquisition whose
//! index the lexer cannot see, are flagged exactly like a re-acquisition.
//! (Dynamic all-at-once acquisition, as in `admit_fleet`'s gate sweep, is a
//! single lexical site and is covered by that function's runtime assert.)

use super::{ident_at, is_punct, FileCx};
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Tok, TokKind};

#[derive(Debug)]
enum Extent {
    /// Dies when brace depth drops below the recorded depth.
    Block(i32),
    /// Dies at the first `;` at the recorded brace depth (or block close).
    Statement(i32),
    /// Dies when paren depth returns to the recorded depth.
    Call(i32),
}

#[derive(Debug)]
struct Guard {
    /// Declared lock name, or None when the receiver is not aliased.
    lock: Option<String>,
    /// The receiver identifier as written (for diagnostics).
    raw: String,
    /// Literal subscript in the receiver chain (`shards[3].…` → 3), for
    /// indexed lock families.
    index: Option<u64>,
    extent: Extent,
    line: u32,
}

/// Validate every nested guard acquisition against the declared order.
pub fn check(cx: &FileCx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cx.is_test_path() {
        return out;
    }
    let toks = cx.toks;
    let mut stack: Vec<Guard> = Vec::new();
    let mut brace: i32 = 0;
    let mut paren: i32 = 0;
    let mut saw_let = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        if cx.is_test[i] {
            continue;
        }
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    brace += 1;
                    saw_let = false;
                }
                "}" => {
                    brace -= 1;
                    stack.retain(|g| match g.extent {
                        Extent::Block(d) | Extent::Statement(d) => d <= brace,
                        Extent::Call(_) => true,
                    });
                    saw_let = false;
                }
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    // A scoped-call guard recorded the paren depth *outside*
                    // its own `(`; it dies once depth returns there.
                    stack.retain(|g| match g.extent {
                        Extent::Call(d) => paren > d,
                        _ => true,
                    });
                }
                ";" => {
                    stack.retain(|g| !matches!(g.extent, Extent::Statement(d) if d >= brace));
                    saw_let = false;
                }
                _ => {}
            },
            TokKind::Ident => {
                if t.text == "let" {
                    saw_let = true;
                    continue;
                }
                // `.lock()` / `.read()` / `.write()` with an empty arg list.
                let is_sync_method = matches!(t.text.as_str(), "lock" | "read" | "write")
                    && i >= 1
                    && is_punct(toks, i - 1, '.')
                    && is_punct(toks, i + 1, '(')
                    && is_punct(toks, i + 2, ')');
                let scoped = cx.cfg.lock_scoped_calls.get(&t.text).filter(|_| {
                    i >= 1 && is_punct(toks, i - 1, '.') && is_punct(toks, i + 1, '(')
                });
                if let Some(lock) = scoped {
                    let guard = Guard {
                        lock: Some(lock.clone()),
                        raw: t.text.clone(),
                        index: literal_index(toks, i),
                        extent: Extent::Call(paren),
                        line: t.line,
                    };
                    validate(cx, &stack, &guard, &mut out);
                    stack.push(guard);
                } else if is_sync_method {
                    let receiver = i.checked_sub(2).and_then(|j| ident_at(toks, j)).unwrap_or("<expr>").to_string();
                    let lock = cx.cfg.lock_aliases.get(&receiver).cloned();
                    let extent = if saw_let { Extent::Block(brace) } else { Extent::Statement(brace) };
                    let guard = Guard { lock, raw: receiver, index: literal_index(toks, i), extent, line: t.line };
                    validate(cx, &stack, &guard, &mut out);
                    stack.push(guard);
                }
            }
            _ => {}
        }
    }
    out
}

/// Nearest literal integer subscript in the receiver chain of the method
/// call at `method` (`self.shards[3].admission.exclusive(…)` → `Some(3)`).
///
/// Walks the chain backwards over `.`-separated members and `[<int>]`
/// subscripts; anything else (a call, a computed index, the chain's start)
/// ends the walk. Computed indexes deliberately return `None` — an index the
/// lexer cannot read cannot prove ascending order.
fn literal_index(toks: &[Tok], method: usize) -> Option<u64> {
    // `j` tracks the `.` whose left-hand side we are about to inspect.
    let mut j = method.checked_sub(1)?;
    if !is_punct(toks, j, '.') {
        return None;
    }
    loop {
        let prev = j.checked_sub(1)?;
        let t = toks.get(prev)?;
        if t.kind == TokKind::Ident {
            // Plain member: keep walking through the preceding `.`, if any.
            match prev.checked_sub(1) {
                Some(p) if is_punct(toks, p, '.') => j = p,
                _ => return None,
            }
        } else if t.kind == TokKind::Punct && t.text == "]" {
            // Expect `[ <int> ]` — a computed index is not provable.
            let lit = prev.checked_sub(1)?;
            let open = prev.checked_sub(2)?;
            if is_punct(toks, open, '[') {
                if let Some(n) = toks.get(lit) {
                    if n.kind == TokKind::Num {
                        return n.text.parse::<u64>().ok();
                    }
                }
            }
            return None;
        } else {
            return None;
        }
    }
}

fn validate(cx: &FileCx<'_>, stack: &[Guard], incoming: &Guard, out: &mut Vec<Diagnostic>) {
    for held in stack {
        match (&held.lock, &incoming.lock) {
            (Some(a), Some(b)) => {
                if a == b {
                    if cx.cfg.lock_indexed.iter().any(|l| l == a) {
                        // Indexed family: members may nest, but only in
                        // strictly ascending index order — and only when the
                        // lexer can actually see both indexes.
                        match (held.index, incoming.index) {
                            (Some(h), Some(n)) if n > h => {}
                            (Some(h), Some(n)) => out.push(cx.diag(
                                RuleId::LockOrder,
                                incoming.line,
                                format!(
                                    "acquires indexed lock `{a}[{n}]` while holding `{a}[{h}]` (line {}); \
                                     family members must be acquired in strictly ascending index order",
                                    held.line
                                ),
                            )),
                            _ => out.push(cx.diag(
                                RuleId::LockOrder,
                                incoming.line,
                                format!(
                                    "re-acquires indexed lock `{a}` while already held (acquired line {}) \
                                     without a provable ascending literal index",
                                    held.line
                                ),
                            )),
                        }
                        continue;
                    }
                    out.push(cx.diag(
                        RuleId::LockOrder,
                        incoming.line,
                        format!("re-acquires `{a}` while already held (acquired line {})", held.line),
                    ));
                    continue;
                }
                match (cx.cfg.lock_rank(a), cx.cfg.lock_rank(b)) {
                    (Some(ra), Some(rb)) if ra < rb => {}
                    (Some(_), Some(_)) => out.push(cx.diag(
                        RuleId::LockOrder,
                        incoming.line,
                        format!(
                            "acquires `{b}` while holding `{a}` (line {}); the declared order in analyzer.toml \
                             requires `{b}` before `{a}`",
                            held.line
                        ),
                    )),
                    _ => out.push(cx.diag(
                        RuleId::LockOrder,
                        incoming.line,
                        format!("nested acquisition of `{a}`/`{b}` not covered by the declared order in analyzer.toml"),
                    )),
                }
            }
            (None, _) | (_, None) => {
                let unknown = if held.lock.is_none() { &held.raw } else { &incoming.raw };
                out.push(cx.diag(
                    RuleId::LockOrder,
                    incoming.line,
                    format!(
                        "nested acquisition involves undeclared lock receiver `{unknown}` (outer guard from line {}); \
                         add an alias and order entry in analyzer.toml",
                        held.line
                    ),
                ));
            }
        }
    }
}
