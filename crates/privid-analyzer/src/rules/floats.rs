//! Rule `f64-exactness`: no decimal formatting of f64 in the wire/WAL code,
//! where `to_bits`/`from_bits` round-tripping is mandated.
//!
//! A budget slot that survives a crash must recover to the *bit-identical*
//! ε it held before it — `{:.17}`-style decimal round-trips are close but
//! not closed under re-parsing across platforms, so `record::enc_f64`
//! writes `{:016x}` of `to_bits`. This rule patrols the configured wire
//! files for format-macro uses of f64-valued identifiers (by configured
//! name or suffix) that bypass that helper. Hex specs (`{v:016x}`) and
//! arguments routed through `.to_bits()` pass; decimal captures fail.

use super::{ident_at, is_punct, FileCx};
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokKind;

const FORMAT_MACROS: &[&str] = &["format", "write", "writeln", "print", "println", "eprint", "eprintln"];

/// Flag decimal f64 formatting in the configured wire/WAL files.
pub fn check(cx: &FileCx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !cx.cfg.float_files.iter().any(|f| cx.path.ends_with(f.as_str())) {
        return out;
    }
    let toks = cx.toks;
    let mut i = 0;
    while i < toks.len() {
        let is_fmt = !cx.is_test[i]
            && ident_at(toks, i).is_some_and(|n| FORMAT_MACROS.contains(&n))
            && is_punct(toks, i + 1, '!')
            && is_punct(toks, i + 2, '(');
        if !is_fmt {
            i += 1;
            continue;
        }
        // Find the macro call's extent.
        let mut depth = 0i32;
        let mut end = i + 2;
        for (j, t) in toks.iter().enumerate().skip(i + 2) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        for j in i + 3..end {
            let t = &toks[j];
            match t.kind {
                // Inline captures in the format string: `{slot_secs}`, `{epsilon:.3}`.
                TokKind::Str | TokKind::RawStr => {
                    for (name, spec) in captures(&t.text) {
                        if cx.cfg.is_floatish(&name) && !spec.contains('x') && !spec.contains('X') {
                            out.push(cx.diag(
                                RuleId::F64Exactness,
                                t.line,
                                format!(
                                    "decimal formatting of f64 `{name}` in wire/WAL code; \
                                     encode via to_bits (see record::enc_f64) or suppress with a reason"
                                ),
                            ));
                        }
                    }
                }
                // Positional/named arguments: a floatish identifier not
                // immediately routed through `.to_bits()`.
                TokKind::Ident if cx.cfg.is_floatish(&t.text) => {
                    let routed = is_punct(toks, j + 1, '.') && ident_at(toks, j + 2) == Some("to_bits");
                    if !routed {
                        out.push(cx.diag(
                            RuleId::F64Exactness,
                            t.line,
                            format!(
                                "f64 `{}` passed to a format macro in wire/WAL code without `.to_bits()`",
                                t.text
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
        i = end + 1;
    }
    out
}

/// Parse `{name:spec}` captures out of a format string's contents.
/// `{{` escapes are skipped; positional `{}` captures yield an empty name
/// (resolved via the argument scan instead).
fn captures(s: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut body = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '}' {
                body.push(chars[i]);
                i += 1;
            }
            let (name, spec) = match body.split_once(':') {
                Some((n, s)) => (n.to_string(), s.to_string()),
                None => (body, String::new()),
            };
            out.push((name, spec));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::captures;

    #[test]
    fn capture_parsing() {
        assert_eq!(
            captures("camera {name}: bad ε {epsilon:.3} bits {bits:016x} {{literal}}"),
            vec![
                ("name".to_string(), String::new()),
                ("epsilon".to_string(), ".3".to_string()),
                ("bits".to_string(), "016x".to_string()),
            ]
        );
    }
}
