//! Rule `panic-freedom`: no `unwrap`/`expect`, no panic macros, no slice
//! indexing in non-test code of the serving-path crates.
//!
//! `assert!`/`debug_assert!` are deliberately *not* in the forbidden set:
//! they state invariants (and the ledger's live-growth contract has a
//! `#[should_panic]` test relying on one). The rule targets the accidental
//! panics — the `.unwrap()` that should have been a typed error on the
//! serving path, and the `slots[lo..hi]` whose bounds nothing local proves.
//! Provably-infallible sites carry an inline suppression whose `-- reason`
//! documents the proof.

use super::{is_punct, FileCx};
use crate::diag::{Diagnostic, RuleId};
use crate::lexer::TokKind;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "unimplemented", "todo"];

/// Keywords that can directly precede a `[` without forming an index
/// expression (`let [a, b] = …`, `return [x]`, `impl T for [U]`, …).
const NON_INDEX_KEYWORDS: &[&str] =
    &["let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "for", "where", "await", "break"];

/// Flag panic-capable constructs in serving-path non-test code.
pub fn check(cx: &FileCx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !cx.cfg.panic_paths.iter().any(|p| cx.path.starts_with(p.as_str())) {
        return out;
    }
    let toks = cx.toks;
    for i in 0..toks.len() {
        if cx.is_test[i] {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                if matches!(name, "unwrap" | "expect")
                    && i >= 1
                    && is_punct(toks, i - 1, '.')
                    && is_punct(toks, i + 1, '(')
                {
                    out.push(cx.diag(
                        RuleId::PanicFreedom,
                        t.line,
                        format!("`.{name}(…)` on the serving path; return a typed error or suppress with a proof"),
                    ));
                } else if PANIC_MACROS.contains(&name) && is_punct(toks, i + 1, '!') {
                    out.push(cx.diag(
                        RuleId::PanicFreedom,
                        t.line,
                        format!("`{name}!` on the serving path; return a typed error or suppress with a proof"),
                    ));
                }
            }
            TokKind::Punct if t.text == "[" && i >= 1 => {
                let prev = &toks[i - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                    _ => false,
                };
                if indexes {
                    out.push(cx.diag(
                        RuleId::PanicFreedom,
                        t.line,
                        format!(
                            "slice/array index after `{}` can panic; use `.get(…)` or suppress with a bounds proof",
                            prev.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}
