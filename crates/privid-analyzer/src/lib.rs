//! `privid-analyzer` — a workspace-wide privacy & concurrency lint engine.
//!
//! Privid's differential-privacy guarantee is a *path property*: every
//! released aggregate must flow through budget admission (debiting ε exactly
//! once) and the Laplace noise path, durable f64 state must round-trip
//! bit-exactly, and the serving path must neither panic nor deadlock. PRs
//! 3–5 enforce those invariants by convention and test; this crate enforces
//! them *statically*, so the ROADMAP's rewrites of these hot paths (sharded
//! registries, the wire protocol, incremental aggregation) fail CI the
//! moment they open an un-noised release or invert a lock order — instead
//! of leaking quietly until a red-team measurement notices.
//!
//! Four rules ship (see `analyzer.toml` at the workspace root for the
//! committed allowlists):
//!
//! - **`dp-taint`** — debit entry points, release-type construction, and
//!   rand/noise sampling may appear only in allowlisted modules.
//! - **`lock-order`** — nested `.lock()/.read()/.write()` acquisitions must
//!   follow the declared partial order.
//! - **`panic-freedom`** — no `unwrap`/`expect`/panic-macros/slice-index in
//!   non-test serving-path code.
//! - **`f64-exactness`** — no decimal f64 formatting in wire/WAL code where
//!   `to_bits`/`from_bits` is mandated.
//!
//! Findings are suppressed inline with
//! `// privid-analyzer: allow(rule-id) -- reason` — the reason is mandatory
//! and reviewed like code.
//!
//! # Why taint is module-granular, not call-graph-precise
//!
//! The analyzer is a hand-rolled lexer plus token-stream rules — the build
//! environment has no registry access, so there is no `syn`, no name
//! resolution, and no call graph. That makes *interprocedural* claims ("this
//! value reaches the network without passing `laplace_noise`") out of reach:
//! a lexical tool cannot see that `helper()` transitively debits a ledger.
//!
//! Module granularity sidesteps that honestly. The confined names — debit
//! methods, release-type constructors, rand samplers — are exactly the
//! *capabilities* a leak needs, and the allowlist pins which files may name
//! them. Any new code wanting ε or noise must either live in an audited
//! module or add a visible allowlist/suppression entry that review can
//! interrogate. The rule does not prove the allowlisted modules correct —
//! their unit and property tests do that — it proves *everything else
//! incapable*, which is the cheap 99% of the red-team surface. The same
//! trade-off applies to `lock-order`: nesting is checked per function
//! lexically, and cross-function composition is governed by the declared
//! global order plus audit comments at every multi-lock site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
