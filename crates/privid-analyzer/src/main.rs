//! CLI: `cargo run -p privid-analyzer -- check [--root DIR]`.
//!
//! Exits 0 when the workspace has zero unsuppressed findings, 1 otherwise
//! (including malformed suppressions), 2 on usage/config errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use privid_analyzer::{config::Config, engine};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: privid-analyzer check [--root DIR]");
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`; usage: privid-analyzer check [--root DIR]");
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("error: no analyzer.toml found walking up from the current directory; pass --root");
            return ExitCode::from(2);
        }
    };
    let config_path = root.join("analyzer.toml");
    let cfg = match std::fs::read_to_string(&config_path).map_err(|e| e.to_string()).and_then(|t| Config::parse(&t)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: cannot load {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match engine::run(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.findings {
        println!("{d}");
    }
    println!(
        "privid-analyzer: {} file(s), {} finding(s), {} suppressed",
        report.files,
        report.findings.len(),
        report.suppressed
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first dir holding analyzer.toml.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("analyzer.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
