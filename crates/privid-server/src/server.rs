//! The threaded TCP front-end over a [`QueryService`].
//!
//! One accept thread, one handler thread plus one writer thread per
//! connection. Responses travel handler → writer through a **bounded**
//! queue: when a slow client stops draining its socket, the queue fills and
//! the handler blocks *before* reading the next request — backpressure
//! reaches the peer as TCP flow control instead of unbounded server memory.
//!
//! Multi-tenant admission control happens here, before any execution:
//! * `Hello` must authenticate the connection (token → tenant + role);
//! * owner-plane operations (camera registration, appends, budget reads)
//!   require the owner role;
//! * `SubmitQuery` runs as the authenticated tenant, so the service's
//!   per-tenant ε quota gates it at admission — a rejected query debits
//!   nothing, anywhere;
//! * standing queries are tenant-scoped end to end: registration claims the
//!   name for the tenant, every firing debits the owner's quota, and polls
//!   from any other tenant answer `UnknownStandingQuery` — one tenant's
//!   noised releases are never readable under another's token.
//!
//! Resource bounds: concurrent connections are capped (excess peers get a
//! typed retryable `ServerBusy` and are closed, and finished handler threads
//! are reaped on every accept), and until a connection authenticates its
//! frames are limited to [`PRE_AUTH_MAX_PAYLOAD`] — an anonymous peer cannot
//! make one length prefix size a 16 MiB allocation.
//!
//! Shutdown is cooperative: a flag plus short socket timeouts. No thread
//! blocks longer than [`TICK`] without re-checking the flag, and
//! [`Server::shutdown`] joins every thread before returning.

use crate::auth::{AuthRegistry, Identity, Role, Token};
use crate::net::{read_frame, write_frame, FrameError, ReadFrame};
use privid_core::{PrivacyPolicy, PrividError, QueryService};
use privid_video::trajectory::Trajectory;
use privid_video::{
    Attributes, FrameBatch, FrameRate, FrameSize, ObjectClass, ObjectId, Point, PresenceSegment,
    SceneConfig, SceneGenerator, TimeSpan, TrackedObject,
};
use privid_wire::{code, RemoteError, Request, Response, SceneKind, WalkerSpec, WirePoll, MAX_PAYLOAD};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long any blocking wait may last before the shutdown flag is
/// re-checked (socket read timeout, accept poll, long-poll tick).
const TICK: Duration = Duration::from_millis(25);

/// Hard cap on a registered synthetic scene's duration (one week). Scene
/// generation is O(duration); an unbounded request would let one owner call
/// pin a core for minutes.
const MAX_SCENE_SECS: f64 = 7.0 * 24.0 * 3600.0;

/// Frame-payload cap for a connection that has not yet authenticated
/// (PROTOCOL.md). A `Hello` is a short token string; until one succeeds the
/// peer gets a few KiB, not the protocol's 16 MiB — pre-auth connections
/// must be close to free.
pub const PRE_AUTH_MAX_PAYLOAD: u32 = 4 * 1024;

/// Server-side ceiling on [`Request::StreamFirings`]'s `max_wait_ms`
/// (PROTOCOL.md). A long-poll pins its handler thread (each tick re-takes
/// the standing-registry lock); a `u32::MAX` wait would pin it for ~50 days.
/// Clients wanting to wait longer re-issue the poll with the same cursor.
pub const MAX_STREAM_WAIT_MS: u32 = 30_000;

/// Server configuration: credentials and queue sizing.
#[derive(Debug)]
pub struct ServerConfig {
    /// The accepted credentials.
    pub tokens: Vec<Token>,
    /// Bounded frames per connection write queue. When full, the handler
    /// blocks (backpressure) instead of buffering without limit.
    pub write_queue_frames: usize,
    /// Cap on concurrent connections. A peer accepted past the cap receives
    /// one typed, retryable `ServerBusy` error frame and is closed before
    /// any handler threads are spawned for it; finished handlers are reaped
    /// from the registry on every accept, so a long-running server's
    /// thread/handle count is bounded by this number, not by uptime.
    pub max_connections: usize,
}

impl ServerConfig {
    /// A config with the given credentials, the default 64-frame write
    /// queue and the default 128-connection cap.
    pub fn new(tokens: Vec<Token>) -> Self {
        ServerConfig { tokens, write_queue_frames: 64, max_connections: 128 }
    }

    /// Builder-style override of the concurrent-connection cap (clamped to
    /// at least 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }
}

/// A running front-end. Dropping without [`Server::shutdown`] leaks the
/// threads until process exit; tests should always shut down.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `127.0.0.1:0` (an ephemeral port) and start serving `service`.
    pub fn start(service: Arc<QueryService>, config: ServerConfig) -> io::Result<Server> {
        Server::bind("127.0.0.1:0", service, config)
    }

    /// Bind an explicit address and start serving.
    pub fn bind(addr: &str, service: Arc<QueryService>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let auth = Arc::new(AuthRegistry::new(config.tokens));
        let queue = config.write_queue_frames.max(1);
        let max_connections = config.max_connections.max(1);

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let mut conns = conns.lock().expect("connection registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
                            // Reap finished handlers on every accept: the
                            // registry holds only live connections, so
                            // neither handles nor threads grow with uptime.
                            conns.retain(|handle| !handle.is_finished());
                            if conns.len() >= max_connections {
                                drop(conns);
                                refuse_busy(stream);
                                continue;
                            }
                            let service = Arc::clone(&service);
                            let auth = Arc::clone(&auth);
                            let flag = Arc::clone(&shutdown);
                            let handle = thread::spawn(move || {
                                // A connection failing is that connection's
                                // problem; the server keeps serving.
                                let _ = serve_connection(stream, service, auth, flag, queue);
                            });
                            conns.push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(TICK),
                        Err(_) => thread::sleep(TICK),
                    }
                }
            })
        };

        Ok(Server { addr, shutdown, accept: Some(accept), conns })
    }

    /// The bound address (use with an ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every connection, and join all threads. In-flight
    /// requests finish; idle connections close at their next tick.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles = {
            let mut conns = self.conns.lock().expect("connection registry poisoned"); // privid-analyzer: allow(panic-freedom) -- lock poisoning only follows a prior panic; propagating the crash is intended
            std::mem::take(&mut *conns)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Refuse a connection accepted past the cap: one typed, retryable error
/// frame, best-effort (a few dozen bytes into a fresh socket buffer — if
/// even that fails, the close alone tells the peer), then drop. No handler
/// or writer thread is ever spawned for a refused connection, and the whole
/// refusal is bounded to a few ticks of the accept thread.
fn refuse_busy(mut stream: TcpStream) {
    let busy = Response::Error(RemoteError {
        code: code::SERVER_BUSY,
        retryable: true,
        message: "server at its connection cap; retry shortly".into(),
    });
    let mut frame = Vec::new();
    if busy.encode(&mut frame).is_ok() {
        let _ = stream.set_write_timeout(Some(TICK));
        if write_frame(&mut stream, &frame).is_ok() {
            // Signal end-of-stream, then briefly drain whatever the peer
            // already sent (typically its Hello). Closing with unread bytes
            // in the kernel buffer turns into an RST that can discard the
            // busy frame before the peer reads it — the drain is what makes
            // the refusal reliably *typed* rather than a reset.
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(TICK));
            let mut scratch = [0u8; 256];
            for _ in 0..2 {
                match stream.read(&mut scratch) {
                    Ok(n) if n > 0 => continue,
                    _ => break,
                }
            }
        }
    }
}

/// Why the handler is done with a connection.
enum Done {
    /// Peer went away or asked everything it wanted.
    Closed,
    /// Shutdown flag.
    Shutdown,
}

fn serve_connection(
    mut stream: TcpStream,
    service: Arc<QueryService>,
    auth: Arc<AuthRegistry>,
    shutdown: Arc<AtomicBool>,
    queue_frames: usize,
) -> Result<Done, FrameError> {
    stream.set_read_timeout(Some(TICK))?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let (tx, rx) = sync_channel::<Vec<u8>>(queue_frames);
    let writer = spawn_writer(write_half, rx);

    let result = connection_loop(&mut stream, &service, &auth, &shutdown, &tx);

    // Close the queue, let the writer drain what was accepted, then join.
    drop(tx);
    let _ = writer.join();
    result
}

fn spawn_writer(mut stream: TcpStream, rx: Receiver<Vec<u8>>) -> JoinHandle<()> {
    thread::spawn(move || {
        while let Ok(frame) = rx.recv() {
            if write_frame(&mut stream, &frame).is_err() {
                // Peer gone: drain the queue so the handler never blocks on
                // a channel nobody reads, then quit.
                while rx.recv().is_ok() {}
                return;
            }
        }
    })
}

/// Encode and enqueue one response. Blocks when the bounded queue is full —
/// that *is* the backpressure. Returns `false` when the writer is gone.
fn enqueue(tx: &SyncSender<Vec<u8>>, shutdown: &AtomicBool, resp: &Response) -> bool {
    let mut frame = Vec::new();
    if resp.encode(&mut frame).is_err() {
        // A response too large for the wire (e.g. a poll with a pathological
        // firing backlog) must not kill the protocol stream silently; send a
        // typed error instead.
        let fallback = Response::Error(RemoteError {
            code: code::BAD_REQUEST,
            retryable: true,
            message: "response exceeded the frame size cap; narrow the request".into(),
        });
        frame.clear();
        if fallback.encode(&mut frame).is_err() {
            return false;
        }
    }
    // Bounded send with shutdown checks: try, and on a full queue wait a
    // tick and re-check the flag rather than parking forever.
    loop {
        match tx.try_send(frame) {
            Ok(()) => return true,
            Err(TrySendError::Full(f)) => {
                if shutdown.load(Ordering::Relaxed) {
                    return false;
                }
                thread::sleep(TICK);
                frame = f;
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
}

fn connection_loop(
    stream: &mut TcpStream,
    service: &QueryService,
    auth: &AuthRegistry,
    shutdown: &AtomicBool,
    tx: &SyncSender<Vec<u8>>,
) -> Result<Done, FrameError> {
    let mut identity: Option<Identity> = None;
    loop {
        // Until `Hello` succeeds the peer is anonymous: its frames are held
        // to the small pre-auth cap, not the protocol's 16 MiB.
        let cap = if identity.is_some() { MAX_PAYLOAD } else { PRE_AUTH_MAX_PAYLOAD };
        let (op, payload) = match read_frame(stream, shutdown, cap) {
            Ok(ReadFrame::Frame(op, payload)) => (op, payload),
            Ok(ReadFrame::Eof) => return Ok(Done::Closed),
            Ok(ReadFrame::Shutdown) => {
                let _ = enqueue(tx, shutdown, &Response::Error(RemoteError {
                    code: code::SHUTTING_DOWN,
                    retryable: true,
                    message: "server shutting down".into(),
                }));
                return Ok(Done::Shutdown);
            }
            // Framing broke (bad magic/version/length): the stream is no
            // longer self-synchronizing. Nothing sane to reply onto it.
            Err(e) => return Err(e),
        };

        let request = match Request::decode(op, &payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame layer was intact (we consumed exactly the
                // advertised payload), so the stream is still synchronized:
                // reply with the typed failure and keep serving.
                let ok = enqueue(tx, shutdown, &Response::Error(RemoteError {
                    code: code::BAD_REQUEST,
                    retryable: false,
                    message: e.to_string(),
                }));
                if !ok {
                    return Ok(Done::Closed);
                }
                continue;
            }
        };

        let (response, close) = handle_request(service, auth, shutdown, &mut identity, &request);
        if !enqueue(tx, shutdown, &response) || close {
            return Ok(Done::Closed);
        }
    }
}

fn remote(code: u16, retryable: bool, message: impl Into<String>) -> Response {
    Response::Error(RemoteError { code, retryable, message: message.into() })
}

fn privid_err(e: &PrividError) -> Response {
    Response::Error(RemoteError::from_privid(e))
}

/// Dispatch one decoded request. Returns the response and whether the
/// connection must close afterwards (auth failures close; everything else
/// keeps the connection).
fn handle_request(
    service: &QueryService,
    auth: &AuthRegistry,
    shutdown: &AtomicBool,
    identity: &mut Option<Identity>,
    request: &Request<'_>,
) -> (Response, bool) {
    // Hello is the only pre-auth request.
    if let Request::Hello { token } = request {
        return match auth.lookup(token) {
            Some(id) => {
                *identity = Some(id.clone());
                (Response::HelloOk { tenant: id.tenant.clone() }, false)
            }
            None => (remote(code::AUTH_FAILED, false, "unrecognised token"), true),
        };
    }
    let Some(id) = identity.as_ref() else {
        return (remote(code::AUTH_REQUIRED, false, "authenticate with Hello first"), false);
    };

    // Budget reads are owner-plane too: a camera's remaining ε encodes what
    // every analyst spent on it — a cross-tenant side channel if any
    // analyst could read it.
    let owner_only = matches!(
        request,
        Request::RegisterCamera { .. }
            | Request::RegisterLiveCamera { .. }
            | Request::AppendFrames { .. }
            | Request::RemainingBudget { .. }
    );
    if owner_only && id.role != Role::Owner {
        return (remote(code::FORBIDDEN, false, "owner-plane operation requires an owner token"), false);
    }

    let response = match request {
        // Already dispatched pre-auth; kept total so a refactor that moves
        // the early return can never turn this arm into a panic.
        Request::Hello { .. } => remote(code::BAD_REQUEST, false, "Hello already handled"),
        Request::RegisterCamera { name, kind, duration_secs, seed, rho_secs, k, epsilon } => {
            register_camera(service, name, *kind, *duration_secs, *seed, *rho_secs, *k, *epsilon)
        }
        Request::RegisterLiveCamera { name, fps, width, height, rho_secs, k, epsilon } => {
            match validate_policy(*rho_secs, *k, *epsilon).and_then(|policy| {
                if !(fps.is_finite() && *fps > 0.0) {
                    return Err(PrividError::Invalid(format!("frame rate must be positive, got {fps}")));
                }
                service.register_live_camera(*name, FrameRate::new(*fps), FrameSize::new(*width, *height), policy)
            }) {
                Ok(()) => Response::Done,
                Err(e) => privid_err(&e),
            }
        }
        Request::AppendFrames { camera, duration_secs, walkers } => {
            match build_batch(*duration_secs, walkers).and_then(|batch| service.append_frames(camera, batch)) {
                Ok(outcome) => Response::AppendOk {
                    live_edge_secs: outcome.live_edge_secs,
                    standing_fired: outcome.standing_fired as u64,
                },
                Err(e) => privid_err(&e),
            }
        }
        Request::SubmitQuery { seed, text } => {
            // The tenant quota gates this at admission: over-quota requests
            // are refused before execution and debit nothing.
            match service.execute_text_as(&id.tenant, *seed, text) {
                Ok(result) => Response::QueryOk(result),
                Err(e) => privid_err(&e),
            }
        }
        Request::RegisterStanding { name, base_seed, text } => {
            // Registration claims the name for this tenant; every firing
            // then debits the tenant's ε quota at admission, exactly like a
            // SubmitQuery — standing queries are not a quota bypass.
            match service.register_standing_query_as(&id.tenant, *name, *base_seed, text) {
                Ok(fired) => Response::StandingOk { fired: fired as u64 },
                Err(e) => privid_err(&e),
            }
        }
        Request::PollStanding { name, cursor } => {
            match service.standing_results_since_as(&id.tenant, name, *cursor) {
                Some(poll) => Response::PollOk(WirePoll::from_core(&poll)),
                None => unknown_standing(name),
            }
        }
        Request::StreamFirings { name, cursor, max_wait_ms } => {
            stream_firings(service, shutdown, &id.tenant, name, *cursor, *max_wait_ms)
        }
        Request::RemainingBudget { camera, at_secs } => {
            Response::BudgetOk { remaining: service.remaining_budget(camera, *at_secs) }
        }
        Request::Ping { nonce } => Response::Pong { nonce: *nonce },
    };
    (response, false)
}

/// The uniform refusal for a standing-query name this tenant may not read:
/// missing and other-tenant names answer identically, so a poll cannot be
/// used to probe which names other tenants have registered.
fn unknown_standing(name: &str) -> Response {
    remote(code::UNKNOWN_STANDING_QUERY, false, format!("no standing query named {name}"))
}

/// Long-poll: return as soon as a firing past `cursor` exists, else when
/// `max_wait_ms` (clamped to [`MAX_STREAM_WAIT_MS`]) elapses (with whatever
/// the final poll shows), else when the server shuts down.
fn stream_firings(
    service: &QueryService,
    shutdown: &AtomicBool,
    tenant: &str,
    name: &str,
    cursor: u64,
    max_wait_ms: u32,
) -> Response {
    let wait_ms = max_wait_ms.min(MAX_STREAM_WAIT_MS);
    let deadline = Instant::now() + Duration::from_millis(u64::from(wait_ms));
    loop {
        let Some(poll) = service.standing_results_since_as(tenant, name, cursor) else {
            return unknown_standing(name);
        };
        if !poll.firings.is_empty() || Instant::now() >= deadline {
            return Response::PollOk(WirePoll::from_core(&poll));
        }
        if shutdown.load(Ordering::Relaxed) {
            return remote(code::SHUTTING_DOWN, true, "server shutting down");
        }
        thread::sleep(TICK.min(deadline.saturating_duration_since(Instant::now())));
    }
}

fn validate_policy(rho_secs: f64, k: u32, epsilon: f64) -> Result<PrivacyPolicy, PrividError> {
    if !(rho_secs.is_finite() && rho_secs > 0.0) {
        return Err(PrividError::Invalid(format!("policy rho must be positive and finite, got {rho_secs}")));
    }
    if k == 0 {
        return Err(PrividError::Invalid("policy K must be at least 1".into()));
    }
    if !(epsilon.is_finite() && epsilon >= 0.0) {
        return Err(PrividError::Invalid(format!("policy epsilon must be non-negative and finite, got {epsilon}")));
    }
    Ok(PrivacyPolicy::new(rho_secs, k, epsilon))
}

/// Expand a wire registration into a deterministic synthetic scene. The
/// same `(kind, duration, seed)` triple generates bit-identical footage
/// here and in any in-process harness — that determinism is what the
/// differential tests lean on.
#[allow(clippy::too_many_arguments)]
fn register_camera(
    service: &QueryService,
    name: &str,
    kind: SceneKind,
    duration_secs: f64,
    seed: u64,
    rho_secs: f64,
    k: u32,
    epsilon: f64,
) -> Response {
    let policy = match validate_policy(rho_secs, k, epsilon) {
        Ok(policy) => policy,
        Err(e) => return privid_err(&e),
    };
    if !(duration_secs.is_finite() && duration_secs > 0.0 && duration_secs <= MAX_SCENE_SECS) {
        return privid_err(&PrividError::Invalid(format!(
            "scene duration must be in (0, {MAX_SCENE_SECS}] seconds, got {duration_secs}"
        )));
    }
    let config = match kind {
        SceneKind::Campus => SceneConfig::campus(),
        SceneKind::Highway => SceneConfig::highway(),
        SceneKind::Urban => SceneConfig::urban(),
    }
    .with_duration_hours(duration_secs / 3600.0)
    .with_seed(seed);
    let scene = SceneGenerator::new(config).generate();
    match service.register_camera(name, scene, policy) {
        Ok(()) => Response::Done,
        Err(e) => privid_err(&e),
    }
}

/// Expand wire walker specs into the tracked objects of a frame batch.
/// Validation happens *here*, before any constructor that asserts: hostile
/// spans are typed errors, not server panics.
fn build_batch(duration_secs: f64, walkers: &[WalkerSpec]) -> Result<FrameBatch, PrividError> {
    if !(duration_secs.is_finite() && duration_secs > 0.0) {
        return Err(PrividError::Invalid(format!("batch duration must be positive and finite, got {duration_secs}")));
    }
    let mut objects = Vec::with_capacity(walkers.len());
    for w in walkers {
        if !(w.start_secs.is_finite() && w.end_secs.is_finite() && 0.0 <= w.start_secs && w.start_secs < w.end_secs)
        {
            return Err(PrividError::Invalid(format!(
                "walker {} span [{}, {}) must be finite, non-negative and non-empty",
                w.id, w.start_secs, w.end_secs
            )));
        }
        let class = match w.class {
            privid_wire::WalkerClass::Person => ObjectClass::Person,
            privid_wire::WalkerClass::Car => ObjectClass::Car,
        };
        objects.push(TrackedObject::new(
            ObjectId(w.id),
            class,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(w.start_secs, w.end_secs),
                trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
            }],
        ));
    }
    Ok(FrameBatch::new(duration_secs, objects))
}
