//! Token authentication for the front-end.
//!
//! Tokens are opaque bearer strings configured at server start; each maps to
//! an identity — a tenant name (the unit of ε-quota accounting) and a role.
//! The registry is immutable once the server is running, so lookups are
//! lock-free shared reads.
//!
//! Auth failures are **admission-time** rejections: they debit nothing — not
//! a tenant quota, not a camera ledger. The per-camera ledgers alone carry
//! the DP guarantee; auth governs who may spend against it at all.

use std::collections::HashMap;

/// What a token is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The video owner's plane: may register cameras and append footage, and
    /// everything an analyst may do.
    Owner,
    /// An analyst: may submit queries, manage standing queries, poll
    /// firings and read budgets — never mutate footage.
    Analyst,
}

/// Who a token authenticates as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// The tenant whose ε quota this connection spends against.
    pub tenant: String,
    /// The connection's role.
    pub role: Role,
}

/// One configured credential.
#[derive(Debug, Clone)]
pub struct Token {
    /// The opaque bearer string the client presents in `Hello`.
    pub token: String,
    /// The tenant it authenticates.
    pub tenant: String,
    /// The role it grants.
    pub role: Role,
}

impl Token {
    /// An owner-plane credential.
    pub fn owner(token: impl Into<String>, tenant: impl Into<String>) -> Self {
        Token { token: token.into(), tenant: tenant.into(), role: Role::Owner }
    }

    /// An analyst credential.
    pub fn analyst(token: impl Into<String>, tenant: impl Into<String>) -> Self {
        Token { token: token.into(), tenant: tenant.into(), role: Role::Analyst }
    }
}

/// The immutable token → identity map.
#[derive(Debug, Default)]
pub struct AuthRegistry {
    tokens: HashMap<String, Identity>,
}

impl AuthRegistry {
    /// Build the registry from the configured credentials. Later entries
    /// with the same token string win.
    pub fn new(tokens: impl IntoIterator<Item = Token>) -> Self {
        let tokens = tokens
            .into_iter()
            .map(|t| (t.token, Identity { tenant: t.tenant, role: t.role }))
            .collect();
        AuthRegistry { tokens }
    }

    /// Resolve a presented token.
    pub fn lookup(&self, token: &str) -> Option<&Identity> {
        self.tokens.get(token)
    }
}
