//! Token authentication for the front-end.
//!
//! Tokens are opaque bearer strings configured at server start; each maps to
//! an identity — a tenant name (the unit of ε-quota accounting) and a role.
//! The registry is immutable once the server is running, so lookups are
//! lock-free shared reads.
//!
//! Auth failures are **admission-time** rejections: they debit nothing — not
//! a tenant quota, not a camera ledger. The per-camera ledgers alone carry
//! the DP guarantee; auth governs who may spend against it at all.
//!
//! Lookup scans every configured credential with a constant-time comparison
//! and no early exit, so the time a `Hello` takes is independent of how many
//! prefix bytes the presented token shares with a real one — a hash-map
//! `get` (or a short-circuiting `==`) would leak token prefixes through a
//! timing side channel, minor over loopback but free to close.

/// What a token is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The video owner's plane: may register cameras and append footage, and
    /// everything an analyst may do.
    Owner,
    /// An analyst: may submit queries, manage standing queries, poll
    /// firings and read budgets — never mutate footage.
    Analyst,
}

/// Who a token authenticates as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// The tenant whose ε quota this connection spends against.
    pub tenant: String,
    /// The connection's role.
    pub role: Role,
}

/// One configured credential.
#[derive(Debug, Clone)]
pub struct Token {
    /// The opaque bearer string the client presents in `Hello`.
    pub token: String,
    /// The tenant it authenticates.
    pub tenant: String,
    /// The role it grants.
    pub role: Role,
}

impl Token {
    /// An owner-plane credential.
    pub fn owner(token: impl Into<String>, tenant: impl Into<String>) -> Self {
        Token { token: token.into(), tenant: tenant.into(), role: Role::Owner }
    }

    /// An analyst credential.
    pub fn analyst(token: impl Into<String>, tenant: impl Into<String>) -> Self {
        Token { token: token.into(), tenant: tenant.into(), role: Role::Analyst }
    }
}

/// The immutable token → identity map.
#[derive(Debug, Default)]
pub struct AuthRegistry {
    tokens: Vec<(String, Identity)>,
}

/// Byte-equality without early exit: the comparison touches every byte of
/// both inputs (padding the shorter with zeros) and folds the differences
/// into one accumulator, so its duration depends only on the lengths, not on
/// where the first mismatch sits.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    // black_box keeps the optimizer from re-introducing the short circuit
    // this function exists to avoid.
    std::hint::black_box(diff) == 0
}

impl AuthRegistry {
    /// Build the registry from the configured credentials. Later entries
    /// with the same token string win.
    pub fn new(tokens: impl IntoIterator<Item = Token>) -> Self {
        let mut registry: Vec<(String, Identity)> = Vec::new();
        for t in tokens {
            let identity = Identity { tenant: t.tenant, role: t.role };
            match registry.iter_mut().find(|(existing, _)| *existing == t.token) {
                Some((_, slot)) => *slot = identity,
                None => registry.push((t.token, identity)),
            }
        }
        AuthRegistry { tokens: registry }
    }

    /// Resolve a presented token. Scans the whole registry with a
    /// constant-time comparison — no early exit on a match.
    pub fn lookup(&self, token: &str) -> Option<&Identity> {
        let mut found = None;
        for (candidate, identity) in &self.tokens {
            if constant_time_eq(candidate.as_bytes(), token.as_bytes()) {
                found = Some(identity);
            }
        }
        found
    }
}
