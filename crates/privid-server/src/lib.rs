//! Privid's network front-end: a threaded TCP server (and matching blocking
//! client) over [`privid_core::QueryService`], speaking the `privid-wire`
//! binary protocol.
//!
//! The server is the **multi-tenant admission layer**:
//! * connections authenticate with bearer tokens ([`auth`]) mapping to a
//!   tenant and a role (owner plane vs analyst plane);
//! * queries run as the authenticated tenant, so per-tenant ε quotas gate
//!   them at admission — an over-quota request is refused *before*
//!   execution and debits nothing, neither quota nor camera ledger;
//! * per-connection write queues are bounded: a slow reader blocks its own
//!   handler (TCP backpressure), never the server's memory.
//!
//! The transport is deliberately boring — blocking sockets, a thread per
//! connection, cooperative shutdown on a flag — because the codec
//! (`privid-wire`) is sans-IO: swapping this module for an async runtime
//! changes nothing about the bytes.
//!
//! The differential tests in this crate hold the load-bearing property: a
//! query submitted over TCP releases **bit-for-bit** the same noised values,
//! and leaves **bit-for-bit** the same ledger state, as the same query
//! executed in-process.

pub mod auth;
pub mod client;
pub mod net;
pub mod server;

pub use auth::{AuthRegistry, Identity, Role, Token};
pub use client::{ClientError, PrividClient};
pub use server::{Server, ServerConfig, MAX_STREAM_WAIT_MS, PRE_AUTH_MAX_PAYLOAD};
