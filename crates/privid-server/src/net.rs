//! Blocking frame I/O over a `TcpStream`.
//!
//! `privid-wire` is sans-IO; this module is the thin blocking driver the
//! threaded server and client share. Reads are chunked against a short
//! socket timeout so a blocked thread re-checks the shutdown flag a few
//! times a second instead of parking forever — that, not signals, is how a
//! clean shutdown reaches a connection that is idle mid-read.

use privid_wire::{decode_header, WireError, HEADER_LEN};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The socket failed.
    Io(io::Error),
    /// The bytes failed to frame (bad magic, bad version, oversized length).
    /// The stream is no longer self-synchronizing; the connection must close.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Wire(e) => write!(f, "framing error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Outcome of a frame read.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete frame: opcode and payload.
    Frame(u8, Vec<u8>),
    /// The peer closed cleanly between frames.
    Eof,
    /// The shutdown flag was raised while waiting.
    Shutdown,
}

/// Fill `buf` completely, tolerating read timeouts. Returns `false` when the
/// peer closed before the first byte (clean EOF) — mid-buffer EOF is an
/// `UnexpectedEof` error. When `shutdown` trips while waiting, returns an
/// `Interrupted` error the caller maps to [`ReadFrame::Shutdown`].
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "server shutting down"));
        }
        let Some(rest) = buf.get_mut(filled..) else {
            return Ok(true);
        };
        match stream.read(rest) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-frame"));
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one complete frame: header, validation, payload.
///
/// `max_payload` tightens (never loosens) the protocol's own frame cap for
/// this read — the server passes a few-KiB limit until a connection has
/// authenticated, so an anonymous peer cannot make one length prefix size a
/// 16 MiB allocation. Pass [`privid_wire::MAX_PAYLOAD`] for the full cap.
pub fn read_frame(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    max_payload: u32,
) -> Result<ReadFrame, FrameError> {
    let mut raw = [0u8; HEADER_LEN];
    match read_full(stream, &mut raw, shutdown) {
        Ok(true) => {}
        Ok(false) => return Ok(ReadFrame::Eof),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadFrame::Shutdown),
        Err(e) => return Err(e.into()),
    }
    let header = decode_header(&raw)?;
    if header.len > max_payload {
        return Err(WireError::FrameTooLarge { len: header.len, max: max_payload }.into());
    }
    let mut payload = vec![0u8; header.len as usize];
    match read_full(stream, &mut payload, shutdown) {
        Ok(true) => Ok(ReadFrame::Frame(header.opcode, payload)),
        Ok(false) => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-frame").into()),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(ReadFrame::Shutdown),
        Err(e) => Err(e.into()),
    }
}

/// Write one already-encoded frame.
pub fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)?;
    stream.flush()
}
