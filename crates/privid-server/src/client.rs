//! The blocking client for the wire protocol.
//!
//! One TCP connection, strictly request → response. Remote failures come
//! back as [`ClientError::Remote`] carrying the stable error code, the
//! server-computed retryability bit and the rendered message — enough for a
//! caller (or the differential harness) to distinguish a quota refusal
//! (code 8, nothing debited) from a budget refusal (code 7) from a parse
//! error without ever seeing the server's internals.

use crate::net::{read_frame, write_frame, FrameError, ReadFrame};
use privid_core::QueryResult;
use privid_wire::{RemoteError, Request, Response, SceneKind, WalkerSpec, WireError, WirePoll, MAX_PAYLOAD};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server's bytes failed to decode.
    Wire(WireError),
    /// The server processed the request and refused it.
    Remote(RemoteError),
    /// The server answered with a well-formed response of the wrong kind.
    UnexpectedResponse(&'static str),
    /// The server closed the connection mid-conversation.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Remote(e) => write!(f, "{e}"),
            ClientError::UnexpectedResponse(what) => write!(f, "unexpected response kind, wanted {what}"),
            ClientError::ConnectionClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Wire(e),
        }
    }
}

impl ClientError {
    /// The remote error code, if this is a remote refusal.
    pub fn remote_code(&self) -> Option<u16> {
        match self {
            ClientError::Remote(e) => Some(e.code),
            _ => None,
        }
    }
}

/// A connected, authenticated client.
#[derive(Debug)]
pub struct PrividClient {
    stream: TcpStream,
    /// Never raised; the client has no server-side shutdown flag to honour.
    local_flag: AtomicBool,
    /// The tenant the server authenticated us as.
    tenant: String,
}

impl PrividClient {
    /// Connect and authenticate. Fails with the server's typed refusal on a
    /// bad token.
    pub fn connect(addr: &str, token: &str) -> Result<PrividClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let mut client =
            PrividClient { stream, local_flag: AtomicBool::new(false), tenant: String::new() };
        match client.call(&Request::Hello { token })? {
            Response::HelloOk { tenant } => {
                client.tenant = tenant;
                Ok(client)
            }
            other => Err(unexpected(other, "HelloOk")),
        }
    }

    /// The tenant this connection authenticated as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// One request → response round trip.
    fn call(&mut self, request: &Request<'_>) -> Result<Response, ClientError> {
        let mut frame = Vec::new();
        request.encode(&mut frame)?;
        write_frame(&mut self.stream, &frame)?;
        match read_frame(&mut self.stream, &self.local_flag, MAX_PAYLOAD)? {
            ReadFrame::Frame(op, payload) => {
                let response = Response::decode(op, &payload)?;
                if let Response::Error(e) = response {
                    return Err(ClientError::Remote(e));
                }
                Ok(response)
            }
            ReadFrame::Eof | ReadFrame::Shutdown => Err(ClientError::ConnectionClosed),
        }
    }

    /// Register a deterministic synthetic camera (owner plane).
    #[allow(clippy::too_many_arguments)]
    pub fn register_camera(
        &mut self,
        name: &str,
        kind: SceneKind,
        duration_secs: f64,
        seed: u64,
        rho_secs: f64,
        k: u32,
        epsilon: f64,
    ) -> Result<(), ClientError> {
        match self.call(&Request::RegisterCamera { name, kind, duration_secs, seed, rho_secs, k, epsilon })? {
            Response::Done => Ok(()),
            other => Err(unexpected(other, "Done")),
        }
    }

    /// Register a live camera (owner plane).
    #[allow(clippy::too_many_arguments)]
    pub fn register_live_camera(
        &mut self,
        name: &str,
        fps: f64,
        width: u32,
        height: u32,
        rho_secs: f64,
        k: u32,
        epsilon: f64,
    ) -> Result<(), ClientError> {
        match self.call(&Request::RegisterLiveCamera { name, fps, width, height, rho_secs, k, epsilon })? {
            Response::Done => Ok(()),
            other => Err(unexpected(other, "Done")),
        }
    }

    /// Append footage to a live camera (owner plane). Returns the new live
    /// edge and how many standing windows fired.
    pub fn append_frames(
        &mut self,
        camera: &str,
        duration_secs: f64,
        walkers: Vec<WalkerSpec>,
    ) -> Result<(f64, u64), ClientError> {
        match self.call(&Request::AppendFrames { camera, duration_secs, walkers })? {
            Response::AppendOk { live_edge_secs, standing_fired } => Ok((live_edge_secs, standing_fired)),
            other => Err(unexpected(other, "AppendOk")),
        }
    }

    /// Submit a one-shot query. The releases come back **bit-for-bit** equal
    /// to what the same `(seed, text)` produces in-process.
    pub fn submit_query(&mut self, seed: u64, text: &str) -> Result<QueryResult, ClientError> {
        match self.call(&Request::SubmitQuery { seed, text })? {
            Response::QueryOk(result) => Ok(result),
            other => Err(unexpected(other, "QueryOk")),
        }
    }

    /// Register a standing query; returns windows fired on registration.
    pub fn register_standing(&mut self, name: &str, base_seed: u64, text: &str) -> Result<u64, ClientError> {
        match self.call(&Request::RegisterStanding { name, base_seed, text })? {
            Response::StandingOk { fired } => Ok(fired),
            other => Err(unexpected(other, "StandingOk")),
        }
    }

    /// Poll a standing query's firings past `cursor`.
    pub fn poll_standing(&mut self, name: &str, cursor: u64) -> Result<WirePoll, ClientError> {
        match self.call(&Request::PollStanding { name, cursor })? {
            Response::PollOk(poll) => Ok(poll),
            other => Err(unexpected(other, "PollOk")),
        }
    }

    /// Long-poll: block server-side until a firing past `cursor` exists or
    /// `max_wait_ms` elapses. The server clamps the wait to its own ceiling
    /// (30 s — see PROTOCOL.md); to wait longer, re-issue with the same
    /// cursor when an empty poll returns.
    pub fn stream_firings(&mut self, name: &str, cursor: u64, max_wait_ms: u32) -> Result<WirePoll, ClientError> {
        // The server may hold this request up to max_wait_ms; widen the
        // socket patience accordingly, then restore the short default.
        let patient = Duration::from_millis(u64::from(max_wait_ms) + 2_000);
        self.stream.set_read_timeout(Some(patient))?;
        let outcome = self.call(&Request::StreamFirings { name, cursor, max_wait_ms });
        self.stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        match outcome? {
            Response::PollOk(poll) => Ok(poll),
            other => Err(unexpected(other, "PollOk")),
        }
    }

    /// A camera's minimum remaining ε at a timestamp (`None`: unknown camera
    /// or instant outside its recording).
    pub fn remaining_budget(&mut self, camera: &str, at_secs: f64) -> Result<Option<f64>, ClientError> {
        match self.call(&Request::RemainingBudget { camera, at_secs })? {
            Response::BudgetOk { remaining } => Ok(remaining),
            other => Err(unexpected(other, "BudgetOk")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self, nonce: u64) -> Result<(), ClientError> {
        match self.call(&Request::Ping { nonce })? {
            Response::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            Response::Pong { .. } => Err(ClientError::UnexpectedResponse("matching Pong nonce")),
            other => Err(unexpected(other, "Pong")),
        }
    }
}

fn unexpected(response: Response, wanted: &'static str) -> ClientError {
    // The Error variant was already routed to ClientError::Remote in call().
    debug_assert!(!matches!(response, Response::Error(_)));
    ClientError::UnexpectedResponse(wanted)
}
