//! The differential harness: the wire path against the in-process path.
//!
//! Two services are built with **identical** registrations — one behind the
//! TCP server, one called directly. For every operation the claim is exact:
//! * noised releases are **bit-for-bit** equal (floats by bit pattern),
//! * ε ledgers evolve identically (remaining budgets equal by bits),
//! * admission refusals — bad auth, missing role, over-quota, malformed
//!   frames — are typed, and debit **nothing** on either axis.

use privid_core::{NoisyValue, PrivacyPolicy, QueryService};
use privid_sandbox::{ChunkProcessor, UniqueEntrantProcessor};
use privid_server::{PrividClient, Server, ServerConfig, Token};
use privid_video::{SceneConfig, SceneGenerator};
use privid_wire::{code, SceneKind, WalkerClass, WalkerSpec};
use std::sync::Arc;

const SCENE_SECS: f64 = 1800.0;
const SCENE_SEED: u64 = 7;

const QUERY: &str = "
    SPLIT campus BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
    PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
        WITH SCHEMA (count:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people GROUP BY chunk BIN 60 CONSUMING 0.5;";

const LIVE_QUERY: &str = "
    SPLIT live BEGIN 0 END 120 BY TIME 10 sec STRIDE 0 sec INTO chunks;
    PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
        WITH SCHEMA (count:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people CONSUMING 0.5;";

/// A service with the person-counter processor attached.
fn base_service() -> Arc<QueryService> {
    let service = Arc::new(QueryService::new());
    service
        .register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        })
        .expect("processor registration");
    service
}

/// The in-process twin of the wire-side `RegisterCamera { campus, … }`.
fn register_campus_direct(service: &QueryService) {
    let config = SceneConfig::campus().with_duration_hours(SCENE_SECS / 3600.0).with_seed(SCENE_SEED);
    let scene = SceneGenerator::new(config).generate();
    service
        .register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 20.0))
        .expect("camera registration");
}

fn start_server(service: Arc<QueryService>) -> Server {
    let config = ServerConfig::new(vec![
        Token::owner("owner-secret", "ops"),
        Token::analyst("analyst-a-secret", "tenant-a"),
        Token::analyst("analyst-b-secret", "tenant-b"),
    ]);
    Server::start(service, config).expect("server start")
}

#[test]
fn wire_releases_are_bit_for_bit_identical_to_in_process_calls() {
    // Server side: the camera arrives over the wire from the owner plane.
    let served = base_service();
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();
    let mut owner = PrividClient::connect(&addr, "owner-secret").expect("owner connect");
    assert_eq!(owner.tenant(), "ops");
    owner
        .register_camera("campus", SceneKind::Campus, SCENE_SECS, SCENE_SEED, 60.0, 2, 20.0)
        .expect("wire camera registration");

    // Direct side: the same registration, in-process.
    let direct = base_service();
    register_campus_direct(&direct);

    let mut analyst = PrividClient::connect(&addr, "analyst-a-secret").expect("analyst connect");
    for seed in [11, 12, 99] {
        let over_wire = analyst.submit_query(seed, QUERY).expect("wire query");
        let in_process = direct.execute_text(seed, QUERY).expect("direct query");
        assert_eq!(over_wire, in_process, "seed {seed}: wire and direct releases must be identical");
        // PartialEq on f64 already demands equal values; pin the stronger
        // bit-level claim explicitly for the noised numbers.
        for (w, d) in over_wire.releases.iter().zip(&in_process.releases) {
            if let (NoisyValue::Number(a), NoisyValue::Number(b)) = (&w.value, &d.value) {
                assert_eq!(a.to_bits(), b.to_bits(), "noised release must match bit-for-bit");
            }
        }
        assert_eq!(over_wire.epsilon_spent.to_bits(), in_process.epsilon_spent.to_bits());

        // The ledgers on both sides evolved identically. Budget reads are
        // owner-plane (an analyst reading them would learn what other
        // tenants spent), so the wire side asks as the owner.
        for at in [0.0, 59.0, 300.0, 599.0] {
            let wire_remaining = owner.remaining_budget("campus", at).expect("wire budget");
            let direct_remaining = direct.remaining_budget("campus", at);
            assert_eq!(
                wire_remaining.map(f64::to_bits),
                direct_remaining.map(f64::to_bits),
                "ledger at {at}s after seed {seed}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn tenant_quota_rejections_are_typed_and_debit_nothing() {
    let served = base_service();
    // tenant-a can afford one 0.5-ε query and no more; tenant-b is richer.
    served.set_tenant_quota("tenant-a", 0.75);
    served.set_tenant_quota("tenant-b", 5.0);
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();
    let mut owner = PrividClient::connect(&addr, "owner-secret").expect("owner connect");
    owner
        .register_camera("campus", SceneKind::Campus, SCENE_SECS, SCENE_SEED, 60.0, 2, 20.0)
        .expect("wire camera registration");

    let mut analyst_a = PrividClient::connect(&addr, "analyst-a-secret").expect("a connect");
    analyst_a.submit_query(1, QUERY).expect("first query fits the quota");
    assert_eq!(served.tenant_quota_remaining("tenant-a"), Some(0.25));
    let ledger_before = served.remaining_budget("campus", 30.0);

    // Second query: over quota. Typed refusal, nothing debited anywhere.
    let refused = analyst_a.submit_query(2, QUERY).expect_err("over-quota must refuse");
    assert_eq!(refused.remote_code(), Some(code::TENANT_QUOTA_EXHAUSTED));
    assert_eq!(served.tenant_quota_remaining("tenant-a"), Some(0.25), "quota untouched by the refusal");
    assert_eq!(
        served.remaining_budget("campus", 30.0).map(f64::to_bits),
        ledger_before.map(f64::to_bits),
        "camera ledger untouched by the refusal"
    );

    // Another tenant on the same front-end is unaffected.
    let mut analyst_b = PrividClient::connect(&addr, "analyst-b-secret").expect("b connect");
    analyst_b.submit_query(3, QUERY).expect("tenant-b has its own quota");
    assert_eq!(served.tenant_quota_remaining("tenant-b"), Some(4.5));
    server.shutdown();
}

#[test]
fn auth_and_role_rejections_are_typed_and_debit_nothing() {
    let served = base_service();
    served.set_tenant_quota("tenant-a", 5.0);
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();

    // Unknown token: typed refusal at Hello.
    let refused = PrividClient::connect(&addr, "wrong-token").expect_err("bad token must refuse");
    assert_eq!(refused.remote_code(), Some(code::AUTH_FAILED));

    // Un-authenticated requests: the server demands Hello first. Drive the
    // wire by hand — the client type always authenticates.
    {
        use privid_server::net::{read_frame, write_frame, ReadFrame};
        use privid_wire::{Request, Response};
        use std::sync::atomic::AtomicBool;
        let mut raw = std::net::TcpStream::connect(&addr).expect("tcp connect");
        raw.set_read_timeout(Some(std::time::Duration::from_millis(100))).unwrap();
        let mut frame = Vec::new();
        Request::Ping { nonce: 4 }.encode(&mut frame).unwrap();
        write_frame(&mut raw, &frame).unwrap();
        let flag = AtomicBool::new(false);
        match read_frame(&mut raw, &flag, privid_wire::MAX_PAYLOAD).expect("response") {
            ReadFrame::Frame(op, payload) => match Response::decode(op, &payload).expect("decode") {
                Response::Error(e) => assert_eq!(e.code, code::AUTH_REQUIRED),
                other => panic!("expected AuthRequired, got {other:?}"),
            },
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    // An analyst may not use the owner plane.
    let mut owner = PrividClient::connect(&addr, "owner-secret").expect("owner connect");
    owner
        .register_camera("campus", SceneKind::Campus, SCENE_SECS, SCENE_SEED, 60.0, 2, 20.0)
        .expect("wire camera registration");
    let mut analyst = PrividClient::connect(&addr, "analyst-a-secret").expect("analyst connect");
    let forbidden = analyst
        .register_live_camera("rogue", 2.0, 100, 100, 20.0, 2, 10.0)
        .expect_err("analyst on the owner plane must refuse");
    assert_eq!(forbidden.remote_code(), Some(code::FORBIDDEN));

    // Budget reads are owner-plane: a camera's remaining ε encodes what
    // every other tenant spent on it.
    let forbidden = analyst
        .remaining_budget("campus", 30.0)
        .expect_err("analyst budget read must refuse");
    assert_eq!(forbidden.remote_code(), Some(code::FORBIDDEN));
    assert!(owner.remaining_budget("campus", 30.0).expect("owner budget read").is_some());

    // None of the rejections touched quota or ledger.
    assert_eq!(served.tenant_quota_remaining("tenant-a"), Some(5.0));
    // The analyst connection still works after its refusals.
    analyst.ping(9).expect("connection survives typed refusals");
    analyst.submit_query(1, QUERY).expect("query still admitted");
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_and_leave_the_connection_usable() {
    use privid_server::net::{read_frame, write_frame, ReadFrame};
    use privid_wire::{encode_frame, opcode, Request, Response};
    use std::sync::atomic::AtomicBool;

    let served = base_service();
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();

    let mut raw = std::net::TcpStream::connect(&addr).expect("tcp connect");
    raw.set_read_timeout(Some(std::time::Duration::from_millis(100))).unwrap();
    let flag = AtomicBool::new(false);
    let mut call = |frame: &[u8]| -> Response {
        write_frame(&mut raw, frame).expect("write");
        match read_frame(&mut raw, &flag, privid_wire::MAX_PAYLOAD).expect("read") {
            ReadFrame::Frame(op, payload) => Response::decode(op, &payload).expect("decode"),
            other => panic!("expected a frame, got {other:?}"),
        }
    };

    // Authenticate by hand, then send a SubmitQuery whose payload lies: a
    // string length prefix pointing past the end of the frame.
    let mut hello = Vec::new();
    Request::Hello { token: "analyst-a-secret" }.encode(&mut hello).unwrap();
    assert!(matches!(call(&hello), Response::HelloOk { .. }));

    let mut payload = Vec::new();
    {
        let mut w = privid_wire::Writer::new(&mut payload);
        w.u64(1); // seed
        w.u32(10_000); // "the query text is 10k bytes" — but none follow
    }
    let mut lying = Vec::new();
    encode_frame(opcode::SUBMIT_QUERY, &payload, &mut lying).unwrap();
    match call(&lying) {
        Response::Error(e) => {
            assert_eq!(e.code, code::BAD_REQUEST);
            assert!(e.message.contains("truncated"), "message names the defect: {}", e.message);
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // A bogus tag deep in a payload is equally typed.
    let mut payload = Vec::new();
    {
        let mut w = privid_wire::Writer::new(&mut payload);
        w.str("name", "cam").unwrap();
        w.u8(77); // no such scene kind
        w.f64(60.0);
        w.u64(0);
        w.f64(60.0);
        w.u32(2);
        w.f64(1.0);
    }
    let mut bad_tag = Vec::new();
    encode_frame(opcode::REGISTER_CAMERA, &payload, &mut bad_tag).unwrap();
    match call(&bad_tag) {
        Response::Error(e) => assert_eq!(e.code, code::BAD_REQUEST),
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // The framing stayed synchronized: a well-formed request still works.
    let mut ping = Vec::new();
    Request::Ping { nonce: 5 }.encode(&mut ping).unwrap();
    assert!(matches!(call(&ping), Response::Pong { nonce: 5 }));
    server.shutdown();
}

#[test]
fn live_cameras_standing_queries_and_cursor_polls_match_in_process() {
    let served = base_service();
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();
    let mut owner = PrividClient::connect(&addr, "owner-secret").expect("owner connect");
    owner.register_live_camera("live", 2.0, 100, 100, 20.0, 2, 10.0).expect("live registration");

    let mut analyst = PrividClient::connect(&addr, "analyst-a-secret").expect("analyst connect");
    let fired = analyst.register_standing("watch", 3, LIVE_QUERY).expect("standing registration");
    assert_eq!(fired, 0, "no footage yet");

    // The direct twin.
    let direct = base_service();
    direct.register_live_camera_like_wire();

    let walkers = [
        WalkerSpec { id: 1, class: WalkerClass::Person, start_secs: 5.0, end_secs: 40.0 },
        WalkerSpec { id: 2, class: WalkerClass::Person, start_secs: 70.0, end_secs: 110.0 },
    ];
    let (edge, fired) =
        owner.append_frames("live", 60.0, vec![walkers[0]]).expect("first append");
    assert_eq!((edge, fired), (60.0, 0), "window [0,120) not complete yet");
    let (edge, fired) = owner.append_frames("live", 80.0, vec![walkers[1]]).expect("second append");
    assert_eq!(edge, 140.0);
    assert_eq!(fired, 1, "window [0,120) completed and fired");

    // Cursor polling over the wire.
    let poll = analyst.poll_standing("watch", 0).expect("poll");
    assert_eq!(poll.next_cursor, 1);
    assert_eq!(poll.dropped, 0);
    assert_eq!(poll.firings.len(), 1);
    let again = analyst.poll_standing("watch", poll.next_cursor).expect("repoll");
    assert!(again.firings.is_empty(), "cursor advanced: nothing new");

    // Long-poll with nothing new returns promptly and empty.
    let streamed = analyst.stream_firings("watch", poll.next_cursor, 200).expect("stream");
    assert!(streamed.firings.is_empty());

    // The same firing, computed in-process from the same appends.
    direct.append_direct(60.0, 1, 5.0, 40.0);
    direct.append_direct(80.0, 2, 70.0, 110.0);
    let wire_firing = &poll.firings[0];
    let direct_result = direct.execute_text(3, LIVE_QUERY).expect("direct standing window");
    match &wire_firing.result {
        Ok(result) => assert_eq!(result, &direct_result, "standing firing must match in-process bits"),
        Err(e) => panic!("firing failed: {e}"),
    }
    assert_eq!(wire_firing.seed, 3, "window 0 fires with base_seed + 0");
    assert_eq!((wire_firing.start_micros, wire_firing.end_micros), (0, 120_000_000));

    // Unknown standing query: typed.
    let missing = analyst.poll_standing("nope", 0).expect_err("unknown standing query");
    assert_eq!(missing.remote_code(), Some(code::UNKNOWN_STANDING_QUERY));
    server.shutdown();
}

/// Helpers giving the direct twin the exact shape the wire side builds.
trait DirectTwin {
    fn register_live_camera_like_wire(&self);
    fn append_direct(&self, duration_secs: f64, id: u64, start: f64, end: f64);
}

impl DirectTwin for QueryService {
    fn register_live_camera_like_wire(&self) {
        use privid_video::{FrameRate, FrameSize};
        self.register_live_camera("live", FrameRate::new(2.0), FrameSize::new(100, 100), PrivacyPolicy::new(20.0, 2, 10.0))
            .expect("live registration");
    }

    fn append_direct(&self, duration_secs: f64, id: u64, start: f64, end: f64) {
        use privid_video::trajectory::Trajectory;
        use privid_video::{
            Attributes, FrameBatch, ObjectClass, ObjectId, Point, PresenceSegment, TimeSpan, TrackedObject,
        };
        let object = TrackedObject::new(
            ObjectId(id),
            ObjectClass::Person,
            Attributes::default(),
            vec![PresenceSegment {
                span: TimeSpan::between_secs(start, end),
                trajectory: Trajectory::linear(Point::new(0.0, 50.0), Point::new(100.0, 50.0), 5.0, 10.0),
            }],
        );
        self.append_frames("live", FrameBatch::new(duration_secs, vec![object])).expect("append");
    }
}

#[test]
fn standing_queries_are_tenant_scoped_and_firings_debit_the_owner_quota() {
    let served = base_service();
    // Each LIVE_QUERY firing consumes 0.5 ε; tenant-a can afford two.
    served.set_tenant_quota("tenant-a", 1.2);
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();
    let mut owner = PrividClient::connect(&addr, "owner-secret").expect("owner connect");
    owner.register_live_camera("live", 2.0, 100, 100, 20.0, 2, 10.0).expect("live registration");

    let mut analyst_a = PrividClient::connect(&addr, "analyst-a-secret").expect("a connect");
    analyst_a.register_standing("watch", 3, LIVE_QUERY).expect("standing registration");

    // The namespace is tenant-scoped: tenant-b can neither take the name…
    let mut analyst_b = PrividClient::connect(&addr, "analyst-b-secret").expect("b connect");
    let denied = analyst_b
        .register_standing("watch", 99, LIVE_QUERY)
        .expect_err("replacing another tenant's standing query must refuse");
    assert_eq!(denied.remote_code(), Some(code::STANDING_QUERY_DENIED));
    let denied = analyst_b
        .register_standing("watch", 3, LIVE_QUERY)
        .expect_err("even an identical re-registration by another tenant must refuse");
    assert_eq!(denied.remote_code(), Some(code::STANDING_QUERY_DENIED));
    // …nor read its firings — another tenant's query answers exactly like a
    // missing one, so polls cannot probe the namespace.
    let hidden = analyst_b.poll_standing("watch", 0).expect_err("cross-tenant poll must refuse");
    assert_eq!(hidden.remote_code(), Some(code::UNKNOWN_STANDING_QUERY));

    // Two windows fire (0.5 ε each) against tenant-a's quota: standing
    // queries are not a quota bypass.
    let (_, fired) = owner.append_frames("live", 120.0, vec![
        WalkerSpec { id: 1, class: WalkerClass::Person, start_secs: 5.0, end_secs: 40.0 },
    ]).expect("first window");
    assert_eq!(fired, 1);
    let (_, fired) = owner.append_frames("live", 120.0, vec![
        WalkerSpec { id: 2, class: WalkerClass::Person, start_secs: 130.0, end_secs: 170.0 },
    ]).expect("second window");
    assert_eq!(fired, 1);
    let quota = served.tenant_quota_remaining("tenant-a").expect("quota set");
    assert!((quota - 0.2).abs() < 1e-9, "two firings debited 1.0 from the owner tenant, left {quota}");

    // The third window exceeds the quota: the firing is recorded as the
    // typed refusal, executes nothing, and debits neither quota nor camera.
    let (_, fired) = owner.append_frames("live", 120.0, vec![]).expect("third window");
    assert_eq!(fired, 1);
    let quota = served.tenant_quota_remaining("tenant-a").expect("quota set");
    assert!((quota - 0.2).abs() < 1e-9, "a refused firing debits no quota, left {quota}");
    assert_eq!(
        served.remaining_budget("live", 250.0).map(f64::to_bits),
        Some(10.0f64.to_bits()),
        "the refused window's camera slots were never touched"
    );
    let poll = analyst_a.poll_standing("watch", 0).expect("owner tenant polls");
    assert_eq!(poll.firings.len(), 3);
    assert!(poll.firings[0].result.is_ok());
    assert!(poll.firings[1].result.is_ok());
    match &poll.firings[2].result {
        Err(e) => assert_eq!(e.code, code::TENANT_QUOTA_EXHAUSTED),
        Ok(r) => panic!("over-quota firing must be a typed refusal, got {r:?}"),
    }
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_typed_busy_and_reaps_finished_handlers() {
    let served = base_service();
    let config = ServerConfig::new(vec![Token::analyst("analyst-a-secret", "tenant-a")])
        .with_max_connections(2);
    let server = Server::start(Arc::clone(&served), config).expect("server start");
    let addr = server.addr().to_string();

    let c1 = PrividClient::connect(&addr, "analyst-a-secret").expect("first connection");
    let c2 = PrividClient::connect(&addr, "analyst-a-secret").expect("second connection");

    // The third is refused before authentication with the typed, retryable
    // busy error.
    let busy = PrividClient::connect(&addr, "analyst-a-secret").expect_err("third must refuse");
    assert_eq!(busy.remote_code(), Some(code::SERVER_BUSY));

    // Freed connections are reaped (on the accept path), so capacity comes
    // back without a restart. The handlers notice the closed sockets within
    // a tick; retry until the sweep has run.
    drop(c1);
    drop(c2);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let recovered = loop {
        match PrividClient::connect(&addr, "analyst-a-secret") {
            Ok(client) => break client,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => panic!("capacity never came back after clients closed: {e}"),
        }
    };
    drop(recovered);
    server.shutdown();
}

#[test]
fn pre_auth_frames_are_capped_small_but_authenticated_ones_are_not() {
    use privid_server::net::{read_frame, write_frame, ReadFrame};
    use privid_wire::{encode_frame, opcode, Request, Response};
    use std::sync::atomic::AtomicBool;

    let served = base_service();
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();
    let flag = AtomicBool::new(false);

    // Anonymous connection: a frame over the pre-auth cap (but far under the
    // protocol's 16 MiB) is refused at the header — the connection closes
    // without the server ever allocating the payload.
    {
        let mut raw = std::net::TcpStream::connect(&addr).expect("tcp connect");
        raw.set_read_timeout(Some(std::time::Duration::from_millis(500))).unwrap();
        let mut frame = Vec::new();
        let oversized = vec![0u8; privid_server::PRE_AUTH_MAX_PAYLOAD as usize + 1];
        encode_frame(opcode::HELLO, &oversized, &mut frame).unwrap();
        write_frame(&mut raw, &frame).expect("write");
        match read_frame(&mut raw, &flag, privid_wire::MAX_PAYLOAD) {
            Ok(ReadFrame::Eof) | Err(_) => {}
            other => panic!("oversized pre-auth frame must close the connection, got {other:?}"),
        }
    }

    // Authenticated connection: the same-sized frame is within the full cap
    // and gets an ordinary typed response (here: a parse failure), proving
    // the small cap applies only before Hello.
    {
        let mut raw = std::net::TcpStream::connect(&addr).expect("tcp connect");
        raw.set_read_timeout(Some(std::time::Duration::from_millis(500))).unwrap();
        let mut call = |frame: &[u8]| -> Response {
            write_frame(&mut raw, frame).expect("write");
            match read_frame(&mut raw, &flag, privid_wire::MAX_PAYLOAD).expect("read") {
                ReadFrame::Frame(op, payload) => Response::decode(op, &payload).expect("decode"),
                other => panic!("expected a frame, got {other:?}"),
            }
        };
        let mut hello = Vec::new();
        Request::Hello { token: "analyst-a-secret" }.encode(&mut hello).unwrap();
        assert!(matches!(call(&hello), Response::HelloOk { .. }));
        let big_text = "x".repeat(privid_server::PRE_AUTH_MAX_PAYLOAD as usize + 1);
        let mut big = Vec::new();
        Request::SubmitQuery { seed: 1, text: &big_text }.encode(&mut big).unwrap();
        match call(&big) {
            Response::Error(e) => assert_eq!(e.code, code::QUERY, "typed parse refusal, not a closed socket"),
            other => panic!("expected a typed error, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn clean_shutdown_joins_every_thread_and_refuses_stragglers() {
    let served = base_service();
    let server = start_server(Arc::clone(&served));
    let addr = server.addr().to_string();
    let mut client = PrividClient::connect(&addr, "analyst-a-secret").expect("connect");
    client.ping(1).expect("live before shutdown");
    server.shutdown();
    // The connection is gone; the next call fails rather than hanging.
    let outcome = client.ping(2);
    assert!(outcome.is_err(), "pinging a shut-down server must fail, got {outcome:?}");
    // And new connections are refused.
    assert!(PrividClient::connect(&addr, "analyst-a-secret").is_err());
}
