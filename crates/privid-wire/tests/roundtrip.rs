//! Round-trip and malformed-frame coverage for the message layer.
//!
//! Two properties: (1) every request and response survives
//! encode → frame-split → decode unchanged, floats compared by bit pattern;
//! (2) every class of malformed frame — bad magic, wrong version, unknown
//! opcode, oversized length, truncation at *every byte boundary*, trailing
//! garbage, bad tags — is a typed `WireError`, never a panic.

use privid_core::{NoisyRelease, NoisyValue, QueryResult};
use privid_query::exec::ReleaseValue;
use privid_wire::{
    decode_header, RemoteError, Request, Response, SceneKind, WalkerClass, WalkerSpec, WireError,
    WireFiring, WirePoll, HEADER_LEN, MAX_PAYLOAD, VERSION,
};

/// Encode a request, split the frame, decode the payload back.
fn round_trip_request(req: &Request<'_>) {
    let mut buf = Vec::new();
    req.encode(&mut buf).expect("encode");
    let header = decode_header(buf[..HEADER_LEN].try_into().expect("header slice")).expect("header");
    assert_eq!(header.version, VERSION);
    assert_eq!(header.len as usize, buf.len() - HEADER_LEN);
    let decoded = Request::decode(header.opcode, &buf[HEADER_LEN..]).expect("decode");
    assert_eq!(&decoded, req);
}

fn round_trip_response(resp: &Response) {
    let mut buf = Vec::new();
    resp.encode(&mut buf).expect("encode");
    let header = decode_header(buf[..HEADER_LEN].try_into().expect("header slice")).expect("header");
    let decoded = Response::decode(header.opcode, &buf[HEADER_LEN..]).expect("decode");
    assert_eq!(&decoded, resp);
}

fn sample_result() -> QueryResult {
    QueryResult {
        releases: vec![
            NoisyRelease {
                label: "COUNT(*)".into(),
                group_key: Some("bin 3".into()),
                value: NoisyValue::Number(0.1 + 0.2), // survives only bit-exactly
                raw: ReleaseValue::Number(42.0),
                sensitivity: 2.0,
                noise_scale: 4.0,
                epsilon: 0.5,
            },
            NoisyRelease {
                label: "ARGMAX(tag)".into(),
                group_key: None,
                value: NoisyValue::Key("red".into()),
                raw: ReleaseValue::Candidates(vec![("red".into(), 7.0), ("blue".into(), -0.0)]),
                sensitivity: 1.0,
                noise_scale: 2.0,
                epsilon: 0.5,
            },
        ],
        epsilon_spent: 1.0,
        chunks_processed: 61,
    }
}

#[test]
fn every_request_round_trips() {
    let requests = [
        Request::Hello { token: "analyst-a-token" },
        Request::RegisterCamera {
            name: "campus",
            kind: SceneKind::Campus,
            duration_secs: 1800.0,
            seed: 7,
            rho_secs: 60.0,
            k: 2,
            epsilon: 20.0,
        },
        Request::RegisterLiveCamera {
            name: "live",
            fps: 2.0,
            width: 100,
            height: 100,
            rho_secs: 20.0,
            k: 2,
            epsilon: 10.0,
        },
        Request::AppendFrames {
            camera: "live",
            duration_secs: 60.0,
            walkers: vec![
                WalkerSpec { id: 1, class: WalkerClass::Person, start_secs: 5.0, end_secs: 40.0 },
                WalkerSpec { id: 2, class: WalkerClass::Car, start_secs: 0.0, end_secs: 59.5 },
            ],
        },
        Request::SubmitQuery { seed: 11, text: "SELECT COUNT(*) FROM people CONSUMING 0.5;" },
        Request::RegisterStanding { name: "hourly", base_seed: 3, text: "SPLIT live …" },
        Request::PollStanding { name: "hourly", cursor: 17 },
        Request::StreamFirings { name: "hourly", cursor: 17, max_wait_ms: 2000 },
        Request::RemainingBudget { camera: "campus", at_secs: 12.5 },
        Request::Ping { nonce: u64::MAX },
    ];
    for req in &requests {
        round_trip_request(req);
    }
}

#[test]
fn every_response_round_trips() {
    let firing_err = RemoteError { code: 7, retryable: false, message: "budget exhausted".into() };
    let responses = [
        Response::HelloOk { tenant: "tenant-a".into() },
        Response::Done,
        Response::AppendOk { live_edge_secs: 120.0, standing_fired: 2 },
        Response::QueryOk(sample_result()),
        Response::StandingOk { fired: 0 },
        Response::PollOk(WirePoll {
            firings: vec![
                WireFiring {
                    start_micros: 0,
                    end_micros: 120_000_000,
                    seed: 3,
                    result: Ok(sample_result()),
                },
                WireFiring {
                    start_micros: 120_000_000,
                    end_micros: 240_000_000,
                    seed: 4,
                    result: Err(firing_err.clone()),
                },
            ],
            next_cursor: 2,
            dropped: 1,
        }),
        Response::BudgetOk { remaining: Some(19.5) },
        Response::BudgetOk { remaining: None },
        Response::Pong { nonce: 9 },
        Response::Error(RemoteError { code: 104, retryable: false, message: "bad request".into() }),
    ];
    for resp in &responses {
        round_trip_response(resp);
    }
}

#[test]
fn noised_floats_survive_bit_for_bit() {
    // The exact adversarial values: a subnormal, -0.0, a value with no short
    // decimal rendering, and a NaN with payload bits.
    let values = [f64::MIN_POSITIVE / 8.0, -0.0, 0.1 + 0.2, f64::from_bits(0x7ff8_0000_dead_beef)];
    for &v in &values {
        let mut result = sample_result();
        result.releases[0].value = NoisyValue::Number(v);
        result.epsilon_spent = v;
        let mut buf = Vec::new();
        Response::QueryOk(result.clone()).encode(&mut buf).unwrap();
        let header = decode_header(buf[..HEADER_LEN].try_into().unwrap()).unwrap();
        match Response::decode(header.opcode, &buf[HEADER_LEN..]).unwrap() {
            Response::QueryOk(decoded) => {
                let got = match decoded.releases[0].value {
                    NoisyValue::Number(n) => n,
                    _ => panic!("variant changed in transit"),
                };
                assert_eq!(got.to_bits(), v.to_bits(), "bit pattern must survive");
                assert_eq!(decoded.epsilon_spent.to_bits(), v.to_bits());
            }
            other => panic!("wrong response: {other:?}"),
        }
    }
}

#[test]
fn truncation_at_every_byte_is_typed() {
    let req = Request::AppendFrames {
        camera: "live",
        duration_secs: 60.0,
        walkers: vec![WalkerSpec { id: 1, class: WalkerClass::Person, start_secs: 5.0, end_secs: 40.0 }],
    };
    let mut buf = Vec::new();
    req.encode(&mut buf).unwrap();
    let opcode = buf[3];
    for cut in 0..buf.len() - HEADER_LEN {
        let result = Request::decode(opcode, &buf[HEADER_LEN..HEADER_LEN + cut]);
        assert!(
            matches!(result, Err(WireError::Truncated { .. })),
            "cut at payload byte {cut}: expected Truncated, got {result:?}"
        );
    }

    let mut out = Vec::new();
    Response::QueryOk(sample_result()).encode(&mut out).unwrap();
    let opcode = out[3];
    for cut in 0..out.len() - HEADER_LEN {
        let result = Response::decode(opcode, &out[HEADER_LEN..HEADER_LEN + cut]);
        assert!(
            matches!(result, Err(WireError::Truncated { .. })),
            "response cut at {cut}: expected Truncated, got {result:?}"
        );
    }
}

#[test]
fn trailing_bytes_bad_tags_and_unknown_opcodes_are_typed() {
    let mut buf = Vec::new();
    Request::Ping { nonce: 1 }.encode(&mut buf).unwrap();
    let opcode = buf[3];
    let mut payload = buf[HEADER_LEN..].to_vec();
    payload.push(0xAB);
    assert_eq!(Request::decode(opcode, &payload), Err(WireError::TrailingBytes { remaining: 1 }));

    // A scene-kind tag from the future.
    let mut buf = Vec::new();
    Request::RegisterCamera {
        name: "c",
        kind: SceneKind::Urban,
        duration_secs: 1.0,
        seed: 0,
        rho_secs: 1.0,
        k: 1,
        epsilon: 1.0,
    }
    .encode(&mut buf)
    .unwrap();
    // The kind byte sits right after the 4-byte length + 1-byte name.
    let kind_at = HEADER_LEN + 4 + 1;
    buf[kind_at] = 9;
    match Request::decode(buf[3], &buf[HEADER_LEN..]) {
        Err(WireError::BadTag { what: "scene kind", tag: 9 }) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }

    assert_eq!(Request::decode(0x6E, &[]), Err(WireError::UnknownOpcode { found: 0x6E }));
    assert_eq!(Response::decode(0x90, &[]), Err(WireError::UnknownOpcode { found: 0x90 }));
}

#[test]
fn hostile_header_lengths_are_rejected_before_allocation() {
    let mut raw = [0u8; HEADER_LEN];
    raw[0] = b'P';
    raw[1] = b'V';
    raw[2] = VERSION;
    raw[3] = 0x05;
    raw[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert_eq!(
        decode_header(&raw),
        Err(WireError::FrameTooLarge { len: MAX_PAYLOAD + 1, max: MAX_PAYLOAD })
    );
}

#[test]
fn walker_count_cap_is_enforced() {
    // Hand-craft an AppendFrames payload claiming 2^31 walkers.
    let mut payload = Vec::new();
    let mut w = privid_wire::Writer::new(&mut payload);
    w.str("camera name", "live").unwrap();
    w.f64(60.0);
    w.u32(1 << 31);
    match Request::decode(privid_wire::opcode::APPEND_FRAMES, &payload) {
        Err(WireError::CountTooLarge { what: "walkers", .. }) => {}
        other => panic!("expected CountTooLarge, got {other:?}"),
    }
}
