//! Zero-copy primitive codec: a borrowing `Reader` and an appending `Writer`.
//!
//! All integers are little-endian. Floats travel as the raw bits of their
//! IEEE-754 representation (`to_bits`/`from_bits`) — the noised releases a
//! query returns must be **bit-for-bit** identical over the wire and
//! in-process, and decimal round-trips are not closed under re-parsing.
//! Strings and byte blobs are `u32` length-prefixed; `Reader::str` returns a
//! `&str` *borrowed from the input buffer* — the server parses a submitted
//! query straight out of its receive buffer without copying it first.
//!
//! The reader never allocates from attacker-controlled lengths: a hostile
//! prefix either fits the bytes that actually arrived or fails with a typed
//! [`WireError::Truncated`] before anything is sized from it.

use crate::error::WireError;

/// A cursor over a borrowed byte buffer. Every accessor either returns the
/// decoded value or a typed error; none panic and none copy variable-length
/// data.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::TrailingBytes { remaining }),
        }
    }

    /// Take `n` raw bytes, borrowed.
    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(bytes) => {
                self.pos += n;
                Ok(bytes)
            }
            None => Err(WireError::Truncated { what, needed: n, have: self.remaining() }),
        }
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        // take(1) returned a 1-byte slice; unwrap_or is the no-panic spelling.
        Ok(self.take(what, 1)?.first().copied().unwrap_or(0))
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(what, 2)?;
        let mut raw = [0u8; 2];
        raw.copy_from_slice(b);
        Ok(u16::from_le_bytes(raw))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(what, 4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(b);
        Ok(u32::from_le_bytes(raw))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(what, 8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        Ok(self.u64(what)? as i64)
    }

    /// Read an `f64` from its IEEE-754 bits. Exact: decode(encode(x)) has
    /// the same bit pattern as `x`, NaN payloads and signed zeros included.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a `bool` encoded as one byte (0 or 1; anything else is a tag error).
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Read a `u32` length-prefixed byte blob, borrowed from the buffer.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.u32(what)? as usize;
        self.take(what, len)
    }

    /// Read a `u32` length-prefixed UTF-8 string, borrowed from the buffer.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes(what)?).map_err(|_| WireError::BadUtf8 { what })
    }

    /// Read a collection count, capped. The cap bounds what one frame may
    /// ask the receiver to allocate — independent of the frame-size cap,
    /// because elements can be zero bytes long on the wire.
    pub fn count(&mut self, what: &'static str, max: u32) -> Result<usize, WireError> {
        let count = self.u32(what)?;
        if count > max {
            return Err(WireError::CountTooLarge { what, count, max });
        }
        Ok(count as usize)
    }
}

/// An appending encoder over a `Vec<u8>`. Infallible except for
/// variable-length fields whose size cannot be represented in the `u32`
/// prefix.
#[derive(Debug)]
pub struct Writer<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    /// Append to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Writer { out }
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a `u32` length-prefixed byte blob.
    pub fn bytes(&mut self, what: &'static str, v: &[u8]) -> Result<(), WireError> {
        let len = u32::try_from(v.len()).map_err(|_| WireError::ValueTooLarge { what })?;
        self.u32(len);
        self.out.extend_from_slice(v);
        Ok(())
    }

    /// Write a `u32` length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str, v: &str) -> Result<(), WireError> {
        self.bytes(what, v.as_bytes())
    }

    /// Write a collection count.
    pub fn count(&mut self, what: &'static str, n: usize) -> Result<(), WireError> {
        let count = u32::try_from(n).map_err(|_| WireError::ValueTooLarge { what })?;
        self.u32(count);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_exactly() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u8(7);
        w.u16(65535);
        w.u32(123_456_789);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.f64(0.1 + 0.2);
        w.bool(true);
        w.str("s", "héllo").unwrap();
        w.bytes("b", &[1, 2, 3]).unwrap();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 65535);
        assert_eq!(r.u32("c").unwrap(), 123_456_789);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        assert_eq!(r.i64("e").unwrap(), -42);
        let z = r.f64("f").unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero survives");
        assert_eq!(r.f64("g").unwrap().to_bits(), f64::NAN.to_bits(), "NaN payload survives");
        assert_eq!(r.f64("h").unwrap(), 0.1 + 0.2, "bit-exact, not decimal-rounded");
        assert!(r.bool("i").unwrap());
        assert_eq!(r.str("j").unwrap(), "héllo");
        assert_eq!(r.bytes("k").unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn hostile_length_prefix_is_truncation_not_allocation() {
        // A 4 GiB string length with 3 bytes behind it: typed error, and the
        // reader never allocated anything to find out.
        let mut buf = Vec::new();
        Writer::new(&mut buf).u32(u32::MAX);
        buf.extend_from_slice(b"abc");
        let mut r = Reader::new(&buf);
        match r.str("query text") {
            Err(WireError::Truncated { what: "query text", needed, have: 3 }) => {
                assert_eq!(needed, u32::MAX as usize)
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u64(7);
        w.str("s", "hello").unwrap();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let outcome = r.u64("x").and_then(|_| r.str("s").map(|_| ()));
            assert!(matches!(outcome, Err(WireError::Truncated { .. })), "cut at {cut} must be typed");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Writer::new(&mut buf).u8(1);
        buf.push(0xEE);
        let mut r = Reader::new(&buf);
        r.u8("v").unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn bad_bool_and_capped_counts_are_typed() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool("flag"), Err(WireError::BadTag { what: "flag", tag: 2 }));
        let mut buf = Vec::new();
        Writer::new(&mut buf).u32(1_000_001);
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.count("walkers", 1_000_000),
            Err(WireError::CountTooLarge { what: "walkers", count: 1_000_001, max: 1_000_000 })
        );
    }
}
