//! The message layer: typed requests and responses over the frame codec.
//!
//! Requests decode **zero-copy**: every string field of [`Request`] borrows
//! from the receive buffer, so the server parses a submitted query straight
//! out of the bytes that arrived. Responses are owned — they wrap the
//! `privid-core` result types directly, which is what makes the differential
//! harness meaningful: a [`Response::QueryOk`] decodes back into the *same*
//! [`QueryResult`] type the in-process API returns, and equality is plain
//! `==` over bit-exact floats.
//!
//! Remote errors travel as a stable numeric code plus the server's rendered
//! message (see [`code`]). Codes are append-only across protocol versions.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use crate::frame::encode_frame;
use privid_core::{NoisyRelease, NoisyValue, PrividError, QueryResult, StandingFiring, StandingPoll};
use privid_query::exec::ReleaseValue;
use std::fmt;

/// Opcode bytes. Requests occupy `0x01..=0x7F`; a successful response is the
/// request's opcode with the high bit set; `0xFF` is the error response.
pub mod opcode {
    /// Authenticate the connection (must be the first request).
    pub const HELLO: u8 = 0x01;
    /// Register a deterministic synthetic camera (owner plane).
    pub const REGISTER_CAMERA: u8 = 0x02;
    /// Register a live (growing) camera (owner plane).
    pub const REGISTER_LIVE_CAMERA: u8 = 0x03;
    /// Append a batch of footage to a live camera (owner plane).
    pub const APPEND_FRAMES: u8 = 0x04;
    /// Submit a one-shot query.
    pub const SUBMIT_QUERY: u8 = 0x05;
    /// Register (idempotently) a standing query.
    pub const REGISTER_STANDING: u8 = 0x06;
    /// Poll a standing query's firings past a cursor.
    pub const POLL_STANDING: u8 = 0x07;
    /// Long-poll a standing query: block until new firings or timeout.
    pub const STREAM_FIRINGS: u8 = 0x08;
    /// Read a camera's remaining per-frame budget at a timestamp.
    pub const REMAINING_BUDGET: u8 = 0x09;
    /// Liveness probe.
    pub const PING: u8 = 0x0A;

    /// Success-response bit.
    pub const RESPONSE: u8 = 0x80;
    /// The error response.
    pub const ERROR: u8 = 0xFF;
}

/// Stable error codes carried by [`RemoteError`]. Append-only: a code never
/// changes meaning across protocol versions.
pub mod code {
    /// `PrividError::UnknownCamera`.
    pub const UNKNOWN_CAMERA: u16 = 1;
    /// `PrividError::UnknownProcessor`.
    pub const UNKNOWN_PROCESSOR: u16 = 2;
    /// `PrividError::UnknownMask`.
    pub const UNKNOWN_MASK: u16 = 3;
    /// `PrividError::UnknownRegionScheme`.
    pub const UNKNOWN_REGION_SCHEME: u16 = 4;
    /// `PrividError::WindowOutsideRecording`.
    pub const WINDOW_OUTSIDE_RECORDING: u16 = 5;
    /// `PrividError::BeyondLiveEdge` (retryable).
    pub const BEYOND_LIVE_EDGE: u16 = 6;
    /// `PrividError::BudgetExhausted` — the per-camera DP ledger refused.
    pub const BUDGET_EXHAUSTED: u16 = 7;
    /// `PrividError::TenantQuotaExhausted` — admission control refused
    /// before execution; nothing was debited anywhere.
    pub const TENANT_QUOTA_EXHAUSTED: u16 = 8;
    /// `PrividError::SoftBoundaryChunkTooLarge`.
    pub const SOFT_BOUNDARY_CHUNK_TOO_LARGE: u16 = 9;
    /// `PrividError::CameraQuarantined` (retryable).
    pub const CAMERA_QUARANTINED: u16 = 10;
    /// `PrividError::Query` — parse/validation/sensitivity failure.
    pub const QUERY: u16 = 11;
    /// `PrividError::Store` — durability-layer failure.
    pub const STORE: u16 = 12;
    /// `PrividError::Invalid`.
    pub const INVALID: u16 = 13;
    /// `PrividError::StandingQueryDenied` — the standing-query name is
    /// owned by a different tenant; admission-time, nothing debited.
    pub const STANDING_QUERY_DENIED: u16 = 14;

    /// Server: the connection has not completed `Hello`.
    pub const AUTH_REQUIRED: u16 = 100;
    /// Server: the presented token is not recognised.
    pub const AUTH_FAILED: u16 = 101;
    /// Server: the token's role may not perform this operation.
    pub const FORBIDDEN: u16 = 102;
    /// Server: no standing query is registered under that name.
    pub const UNKNOWN_STANDING_QUERY: u16 = 103;
    /// Server: the request frame failed to decode (the message carries the
    /// `WireError` rendering).
    pub const BAD_REQUEST: u16 = 104;
    /// Server: shutting down; the request was not processed.
    pub const SHUTTING_DOWN: u16 = 105;
    /// Server: at its concurrent-connection cap; retry later (sent as the
    /// only frame on the refused connection, which then closes).
    pub const SERVER_BUSY: u16 = 106;
}

/// The wire code for a `PrividError`. Total: every variant maps.
pub fn error_code(e: &PrividError) -> u16 {
    match e {
        PrividError::UnknownCamera(_) => code::UNKNOWN_CAMERA,
        PrividError::UnknownProcessor(_) => code::UNKNOWN_PROCESSOR,
        PrividError::UnknownMask(_) => code::UNKNOWN_MASK,
        PrividError::UnknownRegionScheme(_) => code::UNKNOWN_REGION_SCHEME,
        PrividError::WindowOutsideRecording { .. } => code::WINDOW_OUTSIDE_RECORDING,
        PrividError::BeyondLiveEdge { .. } => code::BEYOND_LIVE_EDGE,
        PrividError::BudgetExhausted { .. } => code::BUDGET_EXHAUSTED,
        PrividError::TenantQuotaExhausted { .. } => code::TENANT_QUOTA_EXHAUSTED,
        PrividError::SoftBoundaryChunkTooLarge { .. } => code::SOFT_BOUNDARY_CHUNK_TOO_LARGE,
        PrividError::CameraQuarantined { .. } => code::CAMERA_QUARANTINED,
        PrividError::Query(_) => code::QUERY,
        PrividError::Store(_) => code::STORE,
        PrividError::Invalid(_) => code::INVALID,
        PrividError::StandingQueryDenied { .. } => code::STANDING_QUERY_DENIED,
    }
}

/// A server-side failure as it travels the wire: a stable code, the
/// retryability bit the server computed, and the rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// Stable error code (see [`code`]).
    pub code: u16,
    /// Whether the identical request may later succeed unchanged.
    pub retryable: bool,
    /// The server's human-readable rendering.
    pub message: String,
}

impl RemoteError {
    /// Project a `PrividError` onto the wire.
    pub fn from_privid(e: &PrividError) -> Self {
        RemoteError { code: error_code(e), retryable: e.is_retryable(), message: e.to_string() }
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remote error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for RemoteError {}

/// Scene kinds a [`Request::RegisterCamera`] may name. The server expands
/// the code into the matching `SceneConfig` constructor, so both sides of a
/// differential harness generate **bit-identical** footage from the same
/// `(kind, duration, seed)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneKind {
    /// Campus walkway (pedestrians, benches).
    Campus,
    /// Highway (vehicles, shoulder).
    Highway,
    /// Urban intersection (dense pedestrians, storefronts).
    Urban,
}

impl SceneKind {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            SceneKind::Campus => 0,
            SceneKind::Highway => 1,
            SceneKind::Urban => 2,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(SceneKind::Campus),
            1 => Ok(SceneKind::Highway),
            2 => Ok(SceneKind::Urban),
            tag => Err(WireError::BadTag { what: "scene kind", tag }),
        }
    }
}

/// Object classes an appended walker may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkerClass {
    /// A pedestrian.
    Person,
    /// A vehicle.
    Car,
}

impl WalkerClass {
    fn tag(self) -> u8 {
        match self {
            WalkerClass::Person => 0,
            WalkerClass::Car => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(WalkerClass::Person),
            1 => Ok(WalkerClass::Car),
            tag => Err(WireError::BadTag { what: "walker class", tag }),
        }
    }
}

/// One synthetic tracked object in an [`Request::AppendFrames`] batch: a
/// linear pass-through present over `[start_secs, end_secs)`. Protocol v1
/// carries parametric presence segments, not raw trajectories — enough to
/// drive standing queries; a richer encoding is a future version's problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerSpec {
    /// Stable object identity within the camera.
    pub id: u64,
    /// Semantic class.
    pub class: WalkerClass,
    /// Appearance start, seconds on the camera timeline.
    pub start_secs: f64,
    /// Appearance end (exclusive), seconds.
    pub end_secs: f64,
}

/// Cap on walkers per append frame.
const MAX_WALKERS: u32 = 100_000;
/// Cap on releases per query result frame.
const MAX_RELEASES: u32 = 1 << 20;
/// Cap on ARGMAX candidates per release.
const MAX_CANDIDATES: u32 = 1 << 20;
/// Cap on firings per poll response frame.
const MAX_FIRINGS: u32 = 1 << 16;

/// A client→server request. String fields borrow from the receive buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<'a> {
    /// Authenticate; must be the first request on a connection.
    Hello {
        /// The bearer token identifying the tenant (and its role).
        token: &'a str,
    },
    /// Register a deterministic synthetic camera.
    RegisterCamera {
        /// Camera name.
        name: &'a str,
        /// Scene family to generate.
        kind: SceneKind,
        /// Recording duration in seconds.
        duration_secs: f64,
        /// Scene RNG seed — same seed, same footage, everywhere.
        seed: u64,
        /// Privacy policy ρ (max appearance duration, seconds).
        rho_secs: f64,
        /// Privacy policy K (max appearances).
        k: u32,
        /// Per-frame ε budget.
        epsilon: f64,
    },
    /// Register a live (growing) camera.
    RegisterLiveCamera {
        /// Camera name.
        name: &'a str,
        /// Frame rate, frames per second.
        fps: f64,
        /// Frame width in pixels.
        width: u32,
        /// Frame height in pixels.
        height: u32,
        /// Privacy policy ρ (seconds).
        rho_secs: f64,
        /// Privacy policy K.
        k: u32,
        /// Per-frame ε budget.
        epsilon: f64,
    },
    /// Append footage to a live camera.
    AppendFrames {
        /// The live camera.
        camera: &'a str,
        /// Duration of the appended batch, seconds.
        duration_secs: f64,
        /// Synthetic objects present in the batch.
        walkers: Vec<WalkerSpec>,
    },
    /// Submit a one-shot query.
    SubmitQuery {
        /// Noise seed; same `(seed, text)` must release identical bits.
        seed: u64,
        /// The query text.
        text: &'a str,
    },
    /// Register a standing query (idempotent on identical `(name, seed, text)`).
    RegisterStanding {
        /// Standing-query name.
        name: &'a str,
        /// Base noise seed (window `i` fires with `base_seed + i`).
        base_seed: u64,
        /// The query text.
        text: &'a str,
    },
    /// Poll a standing query's firings past `cursor`.
    PollStanding {
        /// Standing-query name.
        name: &'a str,
        /// Firings before this index are skipped.
        cursor: u64,
    },
    /// Long-poll: like `PollStanding` but blocks server-side until a firing
    /// past `cursor` exists or `max_wait_ms` elapses.
    StreamFirings {
        /// Standing-query name.
        name: &'a str,
        /// Firings before this index are skipped.
        cursor: u64,
        /// Maximum server-side wait, milliseconds.
        max_wait_ms: u32,
    },
    /// Read a camera's minimum remaining budget at a timestamp.
    RemainingBudget {
        /// The camera.
        camera: &'a str,
        /// Timestamp, seconds.
        at_secs: f64,
    },
    /// Liveness probe; echoes the nonce.
    Ping {
        /// Echoed verbatim in `Pong`.
        nonce: u64,
    },
}

impl<'a> Request<'a> {
    /// This request's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Hello { .. } => opcode::HELLO,
            Request::RegisterCamera { .. } => opcode::REGISTER_CAMERA,
            Request::RegisterLiveCamera { .. } => opcode::REGISTER_LIVE_CAMERA,
            Request::AppendFrames { .. } => opcode::APPEND_FRAMES,
            Request::SubmitQuery { .. } => opcode::SUBMIT_QUERY,
            Request::RegisterStanding { .. } => opcode::REGISTER_STANDING,
            Request::PollStanding { .. } => opcode::POLL_STANDING,
            Request::StreamFirings { .. } => opcode::STREAM_FIRINGS,
            Request::RemainingBudget { .. } => opcode::REMAINING_BUDGET,
            Request::Ping { .. } => opcode::PING,
        }
    }

    /// Encode this request as a complete frame onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let mut payload = Vec::new();
        let mut w = Writer::new(&mut payload);
        match self {
            Request::Hello { token } => w.str("token", token)?,
            Request::RegisterCamera { name, kind, duration_secs, seed, rho_secs, k, epsilon } => {
                w.str("camera name", name)?;
                w.u8(kind.tag());
                w.f64(*duration_secs);
                w.u64(*seed);
                w.f64(*rho_secs);
                w.u32(*k);
                w.f64(*epsilon);
            }
            Request::RegisterLiveCamera { name, fps, width, height, rho_secs, k, epsilon } => {
                w.str("camera name", name)?;
                w.f64(*fps);
                w.u32(*width);
                w.u32(*height);
                w.f64(*rho_secs);
                w.u32(*k);
                w.f64(*epsilon);
            }
            Request::AppendFrames { camera, duration_secs, walkers } => {
                w.str("camera name", camera)?;
                w.f64(*duration_secs);
                w.count("walkers", walkers.len())?;
                for walker in walkers {
                    w.u64(walker.id);
                    w.u8(walker.class.tag());
                    w.f64(walker.start_secs);
                    w.f64(walker.end_secs);
                }
            }
            Request::SubmitQuery { seed, text } => {
                w.u64(*seed);
                w.str("query text", text)?;
            }
            Request::RegisterStanding { name, base_seed, text } => {
                w.str("standing name", name)?;
                w.u64(*base_seed);
                w.str("query text", text)?;
            }
            Request::PollStanding { name, cursor } => {
                w.str("standing name", name)?;
                w.u64(*cursor);
            }
            Request::StreamFirings { name, cursor, max_wait_ms } => {
                w.str("standing name", name)?;
                w.u64(*cursor);
                w.u32(*max_wait_ms);
            }
            Request::RemainingBudget { camera, at_secs } => {
                w.str("camera name", camera)?;
                w.f64(*at_secs);
            }
            Request::Ping { nonce } => w.u64(*nonce),
        }
        encode_frame(self.opcode(), &payload, out)
    }

    /// Decode a request payload. `opcode` comes from the frame header;
    /// string fields borrow from `payload`.
    pub fn decode(op: u8, payload: &'a [u8]) -> Result<Request<'a>, WireError> {
        let mut r = Reader::new(payload);
        let req = match op {
            opcode::HELLO => Request::Hello { token: r.str("token")? },
            opcode::REGISTER_CAMERA => Request::RegisterCamera {
                name: r.str("camera name")?,
                kind: SceneKind::from_tag(r.u8("scene kind")?)?,
                duration_secs: r.f64("duration_secs")?,
                seed: r.u64("seed")?,
                rho_secs: r.f64("rho_secs")?,
                k: r.u32("k")?,
                epsilon: r.f64("epsilon")?,
            },
            opcode::REGISTER_LIVE_CAMERA => Request::RegisterLiveCamera {
                name: r.str("camera name")?,
                fps: r.f64("fps")?,
                width: r.u32("width")?,
                height: r.u32("height")?,
                rho_secs: r.f64("rho_secs")?,
                k: r.u32("k")?,
                epsilon: r.f64("epsilon")?,
            },
            opcode::APPEND_FRAMES => {
                let camera = r.str("camera name")?;
                let duration_secs = r.f64("duration_secs")?;
                let n = r.count("walkers", MAX_WALKERS)?;
                let mut walkers = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    walkers.push(WalkerSpec {
                        id: r.u64("walker id")?,
                        class: WalkerClass::from_tag(r.u8("walker class")?)?,
                        start_secs: r.f64("walker start")?,
                        end_secs: r.f64("walker end")?,
                    });
                }
                Request::AppendFrames { camera, duration_secs, walkers }
            }
            opcode::SUBMIT_QUERY => {
                Request::SubmitQuery { seed: r.u64("seed")?, text: r.str("query text")? }
            }
            opcode::REGISTER_STANDING => Request::RegisterStanding {
                name: r.str("standing name")?,
                base_seed: r.u64("base_seed")?,
                text: r.str("query text")?,
            },
            opcode::POLL_STANDING => {
                Request::PollStanding { name: r.str("standing name")?, cursor: r.u64("cursor")? }
            }
            opcode::STREAM_FIRINGS => Request::StreamFirings {
                name: r.str("standing name")?,
                cursor: r.u64("cursor")?,
                max_wait_ms: r.u32("max_wait_ms")?,
            },
            opcode::REMAINING_BUDGET => {
                Request::RemainingBudget { camera: r.str("camera name")?, at_secs: r.f64("at_secs")? }
            }
            opcode::PING => Request::Ping { nonce: r.u64("nonce")? },
            found => return Err(WireError::UnknownOpcode { found }),
        };
        r.finish()?;
        Ok(req)
    }
}

/// One standing-query firing as it travels the wire. The window is carried
/// as raw microseconds (the timeline's native integer unit) so it
/// round-trips exactly; a failed firing carries the projected error.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFiring {
    /// Window start, microseconds on the camera timeline.
    pub start_micros: i64,
    /// Window end (exclusive), microseconds.
    pub end_micros: i64,
    /// The firing's noise seed.
    pub seed: u64,
    /// The execution outcome.
    pub result: Result<QueryResult, RemoteError>,
}

impl WireFiring {
    /// Project a core firing onto the wire.
    pub fn from_core(f: &StandingFiring) -> Self {
        WireFiring {
            start_micros: f.window.start.as_micros(),
            end_micros: f.window.end.as_micros(),
            seed: f.seed,
            result: match &f.result {
                Ok(r) => Ok(r.clone()),
                Err(e) => Err(RemoteError::from_privid(e)),
            },
        }
    }
}

/// A poll response: the firings past the caller's cursor plus the cursor to
/// pass next time. Mirrors `privid_core::StandingPoll`.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePoll {
    /// New firings, oldest first.
    pub firings: Vec<WireFiring>,
    /// Pass this as the next poll's cursor.
    pub next_cursor: u64,
    /// Firings that aged out of retention before this poll saw them.
    pub dropped: u64,
}

impl WirePoll {
    /// Project a core poll onto the wire.
    pub fn from_core(p: &StandingPoll) -> Self {
        WirePoll {
            firings: p.firings.iter().map(WireFiring::from_core).collect(),
            next_cursor: p.next_cursor,
            dropped: p.dropped,
        }
    }
}

/// A server→client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Hello` accepted; names the authenticated tenant.
    HelloOk {
        /// The tenant the token mapped to.
        tenant: String,
    },
    /// An owner-plane registration succeeded (no payload).
    Done,
    /// `AppendFrames` succeeded.
    AppendOk {
        /// The camera's live edge after the append, seconds.
        live_edge_secs: f64,
        /// Standing-query windows that fired during the append.
        standing_fired: u64,
    },
    /// `SubmitQuery` succeeded: the noised releases, bit-exact.
    QueryOk(QueryResult),
    /// `RegisterStanding` succeeded.
    StandingOk {
        /// Windows that fired immediately upon registration.
        fired: u64,
    },
    /// `PollStanding` / `StreamFirings` succeeded.
    PollOk(WirePoll),
    /// `RemainingBudget` succeeded.
    BudgetOk {
        /// The minimum remaining ε at the probed instant; `None` if the
        /// camera is unknown or the instant is outside its recording.
        remaining: Option<f64>,
    },
    /// `Ping` echo.
    Pong {
        /// The request's nonce.
        nonce: u64,
    },
    /// The request failed.
    Error(RemoteError),
}

impl Response {
    /// This response's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => opcode::HELLO | opcode::RESPONSE,
            Response::Done => opcode::REGISTER_CAMERA | opcode::RESPONSE,
            Response::AppendOk { .. } => opcode::APPEND_FRAMES | opcode::RESPONSE,
            Response::QueryOk(_) => opcode::SUBMIT_QUERY | opcode::RESPONSE,
            Response::StandingOk { .. } => opcode::REGISTER_STANDING | opcode::RESPONSE,
            Response::PollOk(_) => opcode::POLL_STANDING | opcode::RESPONSE,
            Response::BudgetOk { .. } => opcode::REMAINING_BUDGET | opcode::RESPONSE,
            Response::Pong { .. } => opcode::PING | opcode::RESPONSE,
            Response::Error(_) => opcode::ERROR,
        }
    }

    /// Encode this response as a complete frame onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let mut payload = Vec::new();
        let mut w = Writer::new(&mut payload);
        match self {
            Response::HelloOk { tenant } => w.str("tenant", tenant)?,
            Response::Done => {}
            Response::AppendOk { live_edge_secs, standing_fired } => {
                w.f64(*live_edge_secs);
                w.u64(*standing_fired);
            }
            Response::QueryOk(result) => encode_query_result(&mut w, result)?,
            Response::StandingOk { fired } => w.u64(*fired),
            Response::PollOk(poll) => {
                w.count("firings", poll.firings.len())?;
                for firing in &poll.firings {
                    w.i64(firing.start_micros);
                    w.i64(firing.end_micros);
                    w.u64(firing.seed);
                    match &firing.result {
                        Ok(result) => {
                            w.u8(0);
                            encode_query_result(&mut w, result)?;
                        }
                        Err(e) => {
                            w.u8(1);
                            encode_remote_error(&mut w, e)?;
                        }
                    }
                }
                w.u64(poll.next_cursor);
                w.u64(poll.dropped);
            }
            Response::BudgetOk { remaining } => match remaining {
                Some(v) => {
                    w.u8(1);
                    w.f64(*v);
                }
                None => w.u8(0),
            },
            Response::Pong { nonce } => w.u64(*nonce),
            Response::Error(e) => encode_remote_error(&mut w, e)?,
        }
        encode_frame(self.opcode(), &payload, out)
    }

    /// Decode a response payload. `op` comes from the frame header.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match op {
            _ if op == opcode::HELLO | opcode::RESPONSE => {
                Response::HelloOk { tenant: r.str("tenant")?.to_string() }
            }
            _ if op == opcode::REGISTER_CAMERA | opcode::RESPONSE => Response::Done,
            _ if op == opcode::APPEND_FRAMES | opcode::RESPONSE => Response::AppendOk {
                live_edge_secs: r.f64("live_edge_secs")?,
                standing_fired: r.u64("standing_fired")?,
            },
            _ if op == opcode::SUBMIT_QUERY | opcode::RESPONSE => {
                Response::QueryOk(decode_query_result(&mut r)?)
            }
            _ if op == opcode::REGISTER_STANDING | opcode::RESPONSE => {
                Response::StandingOk { fired: r.u64("fired")? }
            }
            _ if op == opcode::POLL_STANDING | opcode::RESPONSE => {
                let n = r.count("firings", MAX_FIRINGS)?;
                let mut firings = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let start_micros = r.i64("window start")?;
                    let end_micros = r.i64("window end")?;
                    let seed = r.u64("firing seed")?;
                    let result = match r.u8("firing outcome")? {
                        0 => Ok(decode_query_result(&mut r)?),
                        1 => Err(decode_remote_error(&mut r)?),
                        tag => return Err(WireError::BadTag { what: "firing outcome", tag }),
                    };
                    firings.push(WireFiring { start_micros, end_micros, seed, result });
                }
                Response::PollOk(WirePoll {
                    firings,
                    next_cursor: r.u64("next_cursor")?,
                    dropped: r.u64("dropped")?,
                })
            }
            _ if op == opcode::REMAINING_BUDGET | opcode::RESPONSE => {
                let remaining = match r.u8("budget presence")? {
                    0 => None,
                    1 => Some(r.f64("remaining")?),
                    tag => return Err(WireError::BadTag { what: "budget presence", tag }),
                };
                Response::BudgetOk { remaining }
            }
            _ if op == opcode::PING | opcode::RESPONSE => Response::Pong { nonce: r.u64("nonce")? },
            opcode::ERROR => Response::Error(decode_remote_error(&mut r)?),
            found => return Err(WireError::UnknownOpcode { found }),
        };
        r.finish()?;
        Ok(resp)
    }
}

fn encode_remote_error(w: &mut Writer<'_>, e: &RemoteError) -> Result<(), WireError> {
    w.u16(e.code);
    w.bool(e.retryable);
    w.str("error message", &e.message)
}

fn decode_remote_error(r: &mut Reader<'_>) -> Result<RemoteError, WireError> {
    Ok(RemoteError {
        code: r.u16("error code")?,
        retryable: r.bool("error retryable")?,
        message: r.str("error message")?.to_string(),
    })
}

/// Encode a `QueryResult` — releases in order, every float as raw bits.
fn encode_query_result(w: &mut Writer<'_>, result: &QueryResult) -> Result<(), WireError> {
    w.count("releases", result.releases.len())?;
    for release in &result.releases {
        w.str("release label", &release.label)?;
        match &release.group_key {
            Some(key) => {
                w.u8(1);
                w.str("group key", key)?;
            }
            None => w.u8(0),
        }
        match &release.value {
            NoisyValue::Number(n) => {
                w.u8(0);
                w.f64(*n);
            }
            NoisyValue::Key(k) => {
                w.u8(1);
                w.str("noisy key", k)?;
            }
        }
        match &release.raw {
            ReleaseValue::Number(n) => {
                w.u8(0);
                w.f64(*n);
            }
            ReleaseValue::Candidates(candidates) => {
                w.u8(1);
                w.count("candidates", candidates.len())?;
                for (key, count) in candidates {
                    w.str("candidate key", key)?;
                    w.f64(*count);
                }
            }
        }
        w.f64(release.sensitivity);
        w.f64(release.noise_scale);
        w.f64(release.epsilon);
    }
    w.f64(result.epsilon_spent);
    w.u64(result.chunks_processed as u64);
    Ok(())
}

/// Decode a `QueryResult`. This reconstructs, on the client, the release
/// the server's session layer already minted and debited — it creates no
/// new analyst-visible information (see analyzer.toml's
/// release-construction allow entry for this file).
fn decode_query_result(r: &mut Reader<'_>) -> Result<QueryResult, WireError> {
    let n = r.count("releases", MAX_RELEASES)?;
    let mut releases = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let label = r.str("release label")?.to_string();
        let group_key = match r.u8("group key presence")? {
            0 => None,
            1 => Some(r.str("group key")?.to_string()),
            tag => return Err(WireError::BadTag { what: "group key presence", tag }),
        };
        let value = match r.u8("noisy value tag")? {
            0 => NoisyValue::Number(r.f64("noisy number")?),
            1 => NoisyValue::Key(r.str("noisy key")?.to_string()),
            tag => return Err(WireError::BadTag { what: "noisy value tag", tag }),
        };
        let raw = match r.u8("raw value tag")? {
            0 => ReleaseValue::Number(r.f64("raw number")?),
            1 => {
                let c = r.count("candidates", MAX_CANDIDATES)?;
                let mut candidates = Vec::with_capacity(c.min(4096));
                for _ in 0..c {
                    let key = r.str("candidate key")?.to_string();
                    let count = r.f64("candidate count")?;
                    candidates.push((key, count));
                }
                ReleaseValue::Candidates(candidates)
            }
            tag => return Err(WireError::BadTag { what: "raw value tag", tag }),
        };
        releases.push(NoisyRelease {
            label,
            group_key,
            value,
            raw,
            sensitivity: r.f64("sensitivity")?,
            noise_scale: r.f64("noise_scale")?,
            epsilon: r.f64("release epsilon")?,
        });
    }
    let epsilon_spent = r.f64("epsilon_spent")?;
    let chunks_processed = r.u64("chunks_processed")? as usize;
    Ok(QueryResult { releases, epsilon_spent, chunks_processed })
}
