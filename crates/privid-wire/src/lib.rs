//! Privid's binary wire protocol — the codec half of the network front-end.
//!
//! This crate is **sans-IO**: it converts between typed messages and byte
//! buffers and never touches a socket. `privid-server` drives it over
//! blocking TCP today; an async runtime can drive the exact same codec over
//! its own transport later, because nothing here blocks, sleeps or reads.
//!
//! Layering:
//! * [`codec`] — primitive zero-copy `Reader`/`Writer` (little-endian
//!   integers, `f64` as IEEE-754 bits, `u32` length-prefixed strings
//!   borrowed straight from the receive buffer),
//! * [`frame`] — the 8-byte `magic/version/opcode/length` header and its
//!   validation (length cap enforced before any allocation),
//! * [`msg`] — typed [`Request`]/[`Response`] messages, stable error codes,
//!   and bit-exact encodings of `privid-core`'s release types.
//!
//! The decisive property is *bit-for-bit release transport*: a
//! `Response::QueryOk` decodes into the same `QueryResult` the in-process
//! API returns, floats compared by bit pattern — the differential harness
//! in `privid-server` holds the two paths equal. Every malformed input maps
//! to a typed [`WireError`]; nothing in this crate panics on peer bytes.

pub mod codec;
pub mod error;
pub mod frame;
pub mod msg;

pub use codec::{Reader, Writer};
pub use error::WireError;
pub use frame::{decode_header, encode_frame, FrameHeader, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
pub use msg::{
    code, error_code, opcode, RemoteError, Request, Response, SceneKind, WalkerClass, WalkerSpec,
    WireFiring, WirePoll,
};
