//! Typed decode failures.
//!
//! Every way a peer can hand us malformed bytes has its own variant: the
//! server maps these onto a single `BadRequest` wire error (the peer learns
//! *that* its frame was bad and why, in text), while tests and fuzzers match
//! on the variant to prove each hazard is handled. Nothing in this crate
//! panics on input bytes — a malformed frame is data, not a bug.

use std::fmt;

/// A decode error. Each variant names the malformed-input class that caused
/// it; `what` fields carry the field being decoded when the error hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field did. Covers truncated headers,
    /// truncated payloads and length prefixes that promise more bytes than
    /// the frame carries.
    Truncated {
        /// The field being decoded.
        what: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The first two bytes were not the protocol magic `b"PV"`.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 2],
    },
    /// The frame's version byte is one this build does not speak. Per the
    /// versioning rule (PROTOCOL.md) a peer must reject, not guess.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The opcode byte names no message in this protocol version.
    UnknownOpcode {
        /// The opcode byte found.
        found: u8,
    },
    /// The header's payload length exceeds the hard cap. Rejected before any
    /// allocation: a hostile length prefix must not size a buffer.
    FrameTooLarge {
        /// The advertised payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The payload decoded cleanly but bytes were left over. A well-formed
    /// frame is consumed exactly; trailing garbage means a codec mismatch.
    TrailingBytes {
        /// Bytes left unconsumed.
        remaining: usize,
    },
    /// A length-prefixed string field was not valid UTF-8.
    BadUtf8 {
        /// The field being decoded.
        what: &'static str,
    },
    /// An enum discriminant byte matched no known variant.
    BadTag {
        /// The enum being decoded.
        what: &'static str,
        /// The tag byte found.
        tag: u8,
    },
    /// A collection count exceeded its per-field cap. Caps bound what a
    /// single frame may ask the receiver to allocate, independent of the
    /// overall frame-size cap.
    CountTooLarge {
        /// The collection being decoded.
        what: &'static str,
        /// The advertised element count.
        count: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// A value to encode does not fit its wire representation (e.g. a string
    /// longer than `u32::MAX` bytes). Encode-side only.
    ValueTooLarge {
        /// The field being encoded.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed, have } => {
                write!(f, "truncated frame: {what} needs {needed} bytes, {have} remain")
            }
            WireError::BadMagic { found: [b0, b1] } => {
                write!(f, "bad magic: expected \"PV\", found {b0:#04x} {b1:#04x}")
            }
            WireError::UnsupportedVersion { found } => write!(f, "unsupported protocol version {found}"),
            WireError::UnknownOpcode { found } => write!(f, "unknown opcode {found:#04x}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete payload")
            }
            WireError::BadUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            WireError::BadTag { what, tag } => write!(f, "{what} has no variant with tag {tag}"),
            WireError::CountTooLarge { what, count, max } => {
                write!(f, "{what} count {count} exceeds the cap of {max}")
            }
            WireError::ValueTooLarge { what } => write!(f, "{what} does not fit its wire representation"),
        }
    }
}

impl std::error::Error for WireError {}
