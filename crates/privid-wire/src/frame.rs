//! The frame layer: an 8-byte header in front of every message.
//!
//! ```text
//! offset  size  field
//!      0     2  magic   b"PV"
//!      2     1  version (currently 1)
//!      3     1  opcode  (see `crate::msg::opcode`)
//!      4     4  payload length, u32 little-endian
//!      8   len  payload
//! ```
//!
//! The header is fixed-size so a receiver can read exactly [`HEADER_LEN`]
//! bytes, validate magic/version/length, and only then commit to reading the
//! payload. The length cap is enforced *here*, before any payload
//! allocation: a hostile length prefix is a typed error, never a buffer
//! size.
//!
//! **Versioning rule** (PROTOCOL.md): the version byte bumps on any change
//! to the header or to an existing payload's layout; new opcodes may be
//! added within a version. A peer that sees a version it does not speak
//! must reject the frame — guessing a layout is how budget state gets
//! misread.

use crate::error::WireError;

/// Protocol magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"PV";

/// The protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Size of the fixed frame header.
pub const HEADER_LEN: usize = 8;

/// Hard cap on a frame's payload size (16 MiB). Large enough for any real
/// query result; small enough that one connection cannot stage a
/// memory-exhaustion attack with a single length prefix.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version of the sender.
    pub version: u8,
    /// Message opcode (validated by the message layer).
    pub opcode: u8,
    /// Payload length in bytes, already checked against [`MAX_PAYLOAD`].
    pub len: u32,
}

/// Encode a complete frame (header + payload) onto `out`.
pub fn encode_frame(opcode: u8, payload: &[u8], out: &mut Vec<u8>) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::ValueTooLarge { what: "frame payload" })?;
    if len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge { len, max: MAX_PAYLOAD });
    }
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(opcode);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Decode and validate a frame header from exactly [`HEADER_LEN`] bytes.
pub fn decode_header(raw: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
    let [m0, m1, version, opcode, l0, l1, l2, l3] = *raw;
    let magic = [m0, m1];
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    if version != VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge { len, max: MAX_PAYLOAD });
    }
    Ok(FrameHeader { version, opcode, len })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let mut out = Vec::new();
        encode_frame(0x05, b"payload", &mut out).unwrap();
        assert_eq!(out.len(), HEADER_LEN + 7);
        let mut raw = [0u8; HEADER_LEN];
        raw.copy_from_slice(&out[..HEADER_LEN]);
        let h = decode_header(&raw).unwrap();
        assert_eq!(h, FrameHeader { version: VERSION, opcode: 0x05, len: 7 });
        assert_eq!(&out[HEADER_LEN..], b"payload");
    }

    #[test]
    fn bad_magic_version_and_length_are_typed() {
        let mut raw = [0u8; HEADER_LEN];
        raw[0] = b'X';
        raw[1] = b'V';
        assert_eq!(decode_header(&raw), Err(WireError::BadMagic { found: [b'X', b'V'] }));

        raw[0] = b'P';
        raw[2] = 99;
        assert_eq!(decode_header(&raw), Err(WireError::UnsupportedVersion { found: 99 }));

        raw[2] = VERSION;
        raw[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_header(&raw), Err(WireError::FrameTooLarge { len: u32::MAX, max: MAX_PAYLOAD }));
    }
}
