//! Machine-readable pipeline benchmark snapshot.
//!
//! Times the chunk-processing hot path (the stage that dominates end-to-end
//! query latency) through three implementations and writes the results as
//! JSON so the repo's perf trajectory is tracked PR over PR:
//!
//! 1. `eager_serial_baseline` — the pre-engine pipeline, reconstructed from
//!    the still-public pieces: eager `split_scene` into owned chunks, serial
//!    `run_chunks`, and the copying `Table::append_chunk_output`.
//! 2. `engine_workers_N` — the streaming engine (`ChunkPlan` →
//!    `execute_plan` → by-value `Table::append_chunk_rows`) at N workers.
//! 3. End-to-end `execute_text` at serial vs. auto parallelism.
//!
//! Usage: `bench_snapshot [--smoke] [--out PATH]` (default `BENCH_PR2.json`
//! in the current directory; CI runs `--smoke --out /dev/null`).

use privid::core::execute_plan;
use privid::query::{ColumnDef, Schema, Table};
use privid::sandbox::{run_chunks, ChunkProcessor, SandboxSpec};
use privid::video::{split_scene, ChunkPlan, ChunkSpec, RegionScheme, Scene, TimeSpan};
use privid::{Parallelism, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator, UniqueEntrantProcessor};
use std::time::Instant;

struct Timing {
    mode: String,
    median_ms: f64,
}

/// Median wall-clock of `samples` runs of `f`, after one warm-up run, in ms.
fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn factory() -> impl Fn() -> Box<dyn ChunkProcessor> + Sync {
    || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
}

fn count_schema() -> Schema {
    Schema::new(vec![ColumnDef::number("count", 0.0)]).unwrap()
}

/// The pre-engine hot path: eager materialization, serial sandbox loop,
/// copying (and re-coercing) table append.
fn eager_process_stage(scene: &Scene, window: &TimeSpan, spec: &ChunkSpec, max_rows: usize) -> Table {
    let sandbox = SandboxSpec::new(1.0, max_rows, count_schema());
    let chunks = split_scene(scene, window, spec, None);
    let outputs = run_chunks(&factory(), &chunks, &sandbox, false);
    let mut table = Table::new(count_schema());
    for out in &outputs {
        table.append_chunk_output(out.chunk_start_secs, 0, &out.rows, max_rows);
    }
    table
}

/// The pre-engine spatial-split hot path: the executor used to deep-clone the
/// whole chunk once per region (`restrict_chunk_to_region`).
fn eager_spatial_stage(
    scene: &Scene,
    window: &TimeSpan,
    spec: &ChunkSpec,
    scheme: &RegionScheme,
    max_rows: usize,
) -> Table {
    let sandbox = SandboxSpec::new(1.0, max_rows, count_schema());
    let chunks = split_scene(scene, window, spec, None);
    let f = factory();
    let mut table = Table::new(count_schema());
    for chunk in &chunks {
        for region in &scheme.regions {
            let mut sub = chunk.clone();
            for frame in &mut sub.frames {
                frame.observations.retain(|o| region.bbox.contains_point(o.bbox.center()));
            }
            let visible: std::collections::HashSet<_> =
                sub.frames.iter().flat_map(|fr| fr.observations.iter().map(|o| o.object_id)).collect();
            sub.objects.retain(|id, _| visible.contains(id));
            let out = privid::sandbox::run_chunk_owned(&f, &sub, &sandbox);
            table.append_chunk_output(out.chunk_start_secs, region.id, &out.rows, max_rows);
        }
    }
    table
}

/// The streaming engine at a given worker count.
fn engine_process_stage(
    scene: &Scene,
    window: &TimeSpan,
    spec: &ChunkSpec,
    scheme: Option<&RegionScheme>,
    max_rows: usize,
    parallelism: Parallelism,
) -> Table {
    let sandbox = SandboxSpec::new(1.0, max_rows, count_schema());
    let plan = ChunkPlan::new(scene, window, spec, None);
    let outputs = execute_plan(&plan, scheme, &factory(), &sandbox, parallelism);
    let mut table = Table::new(count_schema());
    for (region, out) in outputs {
        table.append_chunk_rows(out.chunk_start_secs, region, out.rows, max_rows);
    }
    table
}

fn json_timings(timings: &[Timing]) -> String {
    timings
        .iter()
        .map(|t| format!("    {{\"mode\": \"{}\", \"median_ms\": {:.3}}}", t.mode, t.median_ms))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    // Multi-chunk workload: a campus counting query, 5 s chunks. The smoke
    // configuration keeps CI fast; the default is the snapshot of record.
    let (hours, window_secs, samples) = if smoke { (0.25, 300.0, 3) } else { (1.0, 1200.0, 7) };
    let scene = SceneGenerator::new(
        SceneConfig::campus().with_duration_hours(hours).with_arrival_scale(0.3),
    )
    .generate();
    let window = TimeSpan::from_secs(window_secs);
    let spec = ChunkSpec::contiguous(5.0);
    let max_rows = 20;
    let n_chunks = spec.chunk_count(window_secs);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("bench_snapshot: {n_chunks} chunks, {samples} samples per mode, {cores} core(s)");

    // ---- temporal split: eager baseline vs engine at 1/2/4/8 workers ------
    let mut process_stage = Vec::new();
    process_stage.push(Timing {
        mode: "eager_serial_baseline".into(),
        median_ms: median_ms(samples, || {
            std::hint::black_box(eager_process_stage(&scene, &window, &spec, max_rows));
        }),
    });
    for workers in [1usize, 2, 4, 8] {
        process_stage.push(Timing {
            mode: format!("engine_workers_{workers}"),
            median_ms: median_ms(samples, || {
                std::hint::black_box(engine_process_stage(
                    &scene,
                    &window,
                    &spec,
                    None,
                    max_rows,
                    Parallelism::Fixed(workers),
                ));
            }),
        });
    }

    // ---- spatial split: deep-clone-per-region baseline vs filtered views --
    let scheme = scene.region_schemes["default"].clone();
    let spatial_window = TimeSpan::from_secs(if smoke { 60.0 } else { 300.0 });
    let frame_spec = ChunkSpec::contiguous(1.0); // soft boundaries need single-frame chunks
    let mut spatial_stage = Vec::new();
    spatial_stage.push(Timing {
        mode: "eager_clone_per_region_baseline".into(),
        median_ms: median_ms(samples, || {
            std::hint::black_box(eager_spatial_stage(&scene, &spatial_window, &frame_spec, &scheme, max_rows));
        }),
    });
    for workers in [1usize, 4] {
        spatial_stage.push(Timing {
            mode: format!("engine_workers_{workers}"),
            median_ms: median_ms(samples, || {
                std::hint::black_box(engine_process_stage(
                    &scene,
                    &spatial_window,
                    &frame_spec,
                    Some(&scheme),
                    max_rows,
                    Parallelism::Fixed(workers),
                ));
            }),
        });
    }

    // ---- end-to-end query latency ----------------------------------------
    let query = format!(
        "SPLIT campus BEGIN 0 END {window_secs} BY TIME 5 sec STRIDE 0 sec INTO c;
         PROCESS c USING proc TIMEOUT 1 sec PRODUCING {max_rows} ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
         SELECT COUNT(*) FROM t CONSUMING 1.0;"
    );
    let mut end_to_end = Vec::new();
    for (label, parallelism) in [("serial", Parallelism::Serial), ("auto", Parallelism::Auto)] {
        let mut sys = PrividSystem::new(1).with_parallelism(parallelism);
        sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
        sys.register_processor("proc", factory()).expect("camera/processor registration must succeed");
        end_to_end.push(Timing {
            mode: format!("execute_text_{label}"),
            median_ms: median_ms(samples, || {
                std::hint::black_box(sys.execute_text(&query).unwrap());
            }),
        });
    }

    let ms_of = |list: &[Timing], mode: &str| list.iter().find(|t| t.mode == mode).map(|t| t.median_ms).unwrap_or(0.0);
    let eager = ms_of(&process_stage, "eager_serial_baseline");
    let engine1 = ms_of(&process_stage, "engine_workers_1");
    let engine4 = ms_of(&process_stage, "engine_workers_4");
    let spatial_eager = ms_of(&spatial_stage, "eager_clone_per_region_baseline");
    let spatial4 = ms_of(&spatial_stage, "engine_workers_4");

    let json = format!(
        "{{\n  \"pr\": 2,\n  \"bench\": \"pipeline chunk execution\",\n  \"available_cores\": {cores},\n  \
         \"config\": {{\"video\": \"campus\", \"hours\": {hours}, \"window_secs\": {window_secs}, \
         \"chunk_secs\": 5.0, \"chunks\": {n_chunks}, \"max_rows\": {max_rows}, \"samples\": {samples}, \
         \"smoke\": {smoke}}},\n  \"process_stage\": [\n{}\n  ],\n  \"spatial_stage\": [\n{}\n  ],\n  \
         \"end_to_end\": [\n{}\n  ],\n  \"speedups\": {{\n    \
         \"engine_1worker_vs_eager_baseline\": {:.2},\n    \
         \"engine_4workers_vs_eager_baseline\": {:.2},\n    \
         \"engine_4workers_vs_engine_1worker\": {:.2},\n    \
         \"spatial_engine_4workers_vs_clone_baseline\": {:.2}\n  }}\n}}\n",
        json_timings(&process_stage),
        json_timings(&spatial_stage),
        json_timings(&end_to_end),
        eager / engine1.max(1e-9),
        eager / engine4.max(1e-9),
        engine1 / engine4.max(1e-9),
        spatial_eager / spatial4.max(1e-9),
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_snapshot: wrote {out_path}");
        print!("{json}");
    }
}
