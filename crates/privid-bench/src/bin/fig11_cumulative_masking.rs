//! Regenerates the paper's fig11 cumulative masking experiment. Pass `--full` for the
//! larger (slower) configuration.

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        privid_bench::Scale::full()
    } else {
        privid_bench::Scale::quick()
    };
    print!("{}", privid_bench::fig11_cumulative_masking(scale));
}
