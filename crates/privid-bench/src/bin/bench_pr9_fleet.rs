//! Machine-readable fleet-sharding benchmark snapshot.
//!
//! Measures the PR-9 serving+durability refactor and writes JSON so the perf
//! trajectory is tracked PR over PR:
//!
//! 1. `group_commit` — fsync-durable admission throughput through the real
//!    [`privid::admit_fleet`] path with the journal *staging* records and
//!    redeeming the commit outside the admission gate. Concurrent admissions
//!    share one fsync per batch (leader/follower group commit); the serial
//!    `append` baseline is the PR-5 cliff this closes (~141× under
//!    `FsyncPolicy::Always`). A counting Vfs reports records-per-fsync.
//! 2. `fleet_sweep` — admissions/s over shard count × fsync policy for a
//!    64-camera fleet with aggressive snapshot compaction. Each shard
//!    snapshots only its own slice of the fleet, so compaction I/O per
//!    admission falls with the shard count — the scaling here is
//!    architectural (smaller per-shard snapshots), not just parallelism,
//!    and shows up even on a single core.
//!
//! Usage: `bench_pr9_fleet [--smoke] [--out PATH]` (default `BENCH_PR9.json`
//! in the current directory; CI runs `--smoke --out /dev/null`).

use privid::store::{DebitRange, StdVfs, Vfs, VfsFile};
use privid::{
    admit_fleet, AdmissionController, AdmissionJournal, AdmissionRequest, BudgetLedger, CommitWait, FsyncPolicy,
    Record, ShardAdmission, StoreError, TimeSpan, WalOptions, WalStore,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const LEDGER_SECS: f64 = 3_600.0;
const WINDOW_SECS: f64 = 10.0;
const FLEET_CAMERAS: usize = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-bench-pr9-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// A pass-through Vfs that counts data fsyncs, for the records-per-fsync metric.

#[derive(Debug)]
struct CountingVfs {
    inner: StdVfs,
    syncs: Arc<AtomicU64>,
}

struct CountingFile {
    inner: Box<dyn VfsFile>,
    syncs: Arc<AtomicU64>,
}

impl VfsFile for CountingFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.inner.read_to_end(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.inner.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
    fn seek(&mut self, pos: io::SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl Vfs for CountingVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(CountingFile { inner: self.inner.open_rw(path)?, syncs: Arc::clone(&self.syncs) }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(CountingFile { inner: self.inner.create(path)?, syncs: Arc::clone(&self.syncs) }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }
}

// ---------------------------------------------------------------------------
// The serving layer's journal shape: stage under the gate, commit outside it.

struct ShardJournal<'a> {
    store: Arc<WalStore>,
    camera: &'a str,
}

impl AdmissionJournal for ShardJournal<'_> {
    fn record_admit(
        &self,
        requests: &[AdmissionRequest<'_>],
        epsilon: f64,
    ) -> Result<Option<CommitWait>, StoreError> {
        let mut debits = Vec::with_capacity(requests.len());
        for r in requests {
            let (lo, hi) = r.ledger.debit_slot_range(&r.window).expect("checked window resolves");
            debits.push(DebitRange { camera: self.camera.into(), lo: lo as u64, hi: hi as u64 });
        }
        let ticket = self.store.stage(Record::Admit { epsilon, debits })?;
        // CommitWait is 'static: the closure owns its own handle to the
        // shard store, exactly like the service's journal.
        let store = Arc::clone(&self.store);
        Ok(Some(Box::new(move || store.wait_commit(ticket))))
    }
    fn record_rollback(&self, _: &[AdmissionRequest<'_>], _: usize, _: f64) {}
}

/// A bench fleet: `shards` WAL stores + admission gates, `FLEET_CAMERAS`
/// ledgers homed round-robin (`cam % shards`).
struct Fleet {
    stores: Vec<Arc<WalStore>>,
    controllers: Vec<AdmissionController>,
    ledgers: Vec<BudgetLedger>,
    names: Vec<String>,
    dir: PathBuf,
}

impl Fleet {
    fn open(tag: &str, shards: usize, fsync: FsyncPolicy, snapshot_every: u64, vfs: Option<Arc<dyn Vfs>>) -> Fleet {
        let dir = temp_dir(tag);
        let stores: Vec<Arc<WalStore>> = (0..shards)
            .map(|k| {
                let shard_dir = dir.join(format!("shard-{k}"));
                let options = WalOptions { snapshot_every };
                let (store, _) = match &vfs {
                    Some(vfs) => WalStore::open_with_vfs(&shard_dir, fsync, options, Arc::clone(vfs)),
                    None => WalStore::open_with(&shard_dir, fsync, options),
                }
                .expect("shard store opens");
                Arc::new(store)
            })
            .collect();
        let names: Vec<String> = (0..FLEET_CAMERAS).map(|c| format!("cam{c}")).collect();
        for (c, name) in names.iter().enumerate() {
            stores[c % shards]
                .append(Record::RegisterCamera {
                    name: name.clone(),
                    generation: 0,
                    live: false,
                    slot_secs: 1.0,
                    duration_secs: LEDGER_SECS,
                    initial_epsilon: 1e9,
                    rho_secs: 30.0,
                    k: 2,
                })
                .expect("camera registration journals");
        }
        Fleet {
            stores,
            controllers: (0..shards).map(|_| AdmissionController::new()).collect(),
            ledgers: (0..FLEET_CAMERAS).map(|_| BudgetLedger::new(LEDGER_SECS, 1e9)).collect(),
            names,
            dir,
        }
    }

    /// One single-camera journaled fleet admission (the common case: one
    /// group, one gate, stage under it, fsync outside it).
    fn admit_one(&self, cam: usize, window_slot: usize) {
        let shards = self.stores.len();
        let begin = ((window_slot % (LEDGER_SECS / WINDOW_SECS) as usize) as f64) * WINDOW_SECS;
        let requests = [AdmissionRequest {
            ledger: &self.ledgers[cam],
            window: TimeSpan::between_secs(begin, begin + WINDOW_SECS),
            rho_margin: 30.0,
        }];
        let shard = cam % shards;
        let journal = ShardJournal { store: Arc::clone(&self.stores[shard]), camera: &self.names[cam] };
        let groups = [ShardAdmission { shard, controller: &self.controllers[shard], journal: Some(&journal), members: vec![0] }];
        admit_fleet(&groups, &requests, 1e-6).expect("bench admission admitted");
    }

    fn close(self) {
        let dir = self.dir.clone();
        drop(self);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Pipelined fsync-durable admissions: each worker runs the per-shard
/// protocol by hand — Algorithm-1 check + journal stage + debit under the
/// shard's gate, commit wait redeemed *outside* it — keeping `depth`
/// admissions in flight before redeeming the batch. This is the shape of a
/// serving loop with many in-flight requests: every record is still
/// fsync-durable before its admission is acknowledged, but the whole flight
/// shares a handful of group-commit fsyncs. Returns admissions/s.
fn pipelined_admissions_per_sec(fleet: &Fleet, threads: usize, per_thread: usize, depth: usize) -> f64 {
    let shards = fleet.stores.len();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let fleet = &fleet;
            scope.spawn(move || {
                let mut waits: Vec<CommitWait> = Vec::with_capacity(depth);
                for i in 0..per_thread {
                    let n = t * per_thread + i;
                    let cam = n % FLEET_CAMERAS;
                    let shard = cam % shards;
                    let begin = ((n % (LEDGER_SECS / WINDOW_SECS) as usize) as f64) * WINDOW_SECS;
                    let window = TimeSpan::between_secs(begin, begin + WINDOW_SECS);
                    let ledger = &fleet.ledgers[cam];
                    let requests = [AdmissionRequest { ledger, window, rho_margin: 30.0 }];
                    let journal = ShardJournal { store: Arc::clone(&fleet.stores[shard]), camera: &fleet.names[cam] };
                    let wait = fleet.controllers[shard].exclusive(|| {
                        // Journal before debit (never-under-debit), both under
                        // the gate; the fsync happens at redemption, outside.
                        let wait = journal.record_admit(&requests, 1e-6).expect("stage").expect("durable journal stages");
                        ledger.check_and_debit(&window, 30.0, 1e-6).expect("bench admission admitted");
                        wait
                    });
                    waits.push(wait);
                    if waits.len() == depth {
                        for w in waits.drain(..) {
                            w().expect("group commit acknowledges the flight");
                        }
                    }
                }
                for w in waits {
                    w().expect("group commit acknowledges the tail");
                }
            });
        }
    });
    (threads * per_thread) as f64 / start.elapsed().as_secs_f64()
}

/// Hammer the fleet with `threads` workers × `per_thread` admissions,
/// round-robin over cameras; returns admissions/s.
fn admissions_per_sec(fleet: &Fleet, threads: usize, per_thread: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let fleet = &fleet;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let n = t * per_thread + i;
                    fleet.admit_one(n % FLEET_CAMERAS, n);
                }
            });
        }
    });
    (threads * per_thread) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (n_serial, n_group, n_sweep, snapshot_every) =
        if smoke { (50, 2_000, 2_000, 64) } else { (300, 40_000, 20_000, 64) };
    eprintln!("bench_pr9_fleet: {FLEET_CAMERAS}-camera fleet, {cores} core(s), smoke={smoke}");

    // ---- group commit: the PR-5 fsync cliff, closed ----------------------------------
    // Serial appends first: one fsync per record, the 141× baseline.
    let serial_fleet = Fleet::open("serial", 1, FsyncPolicy::Always, u64::MAX, None);
    let serial_per_sec = admissions_per_sec(&serial_fleet, 1, n_serial);
    serial_fleet.close();

    // Concurrent admissions through the same path: stagers pile up behind
    // the in-flight fsync and the next leader flushes them as one batch.
    let group_threads = 32;
    let syncs = Arc::new(AtomicU64::new(0));
    let counting: Arc<dyn Vfs> = Arc::new(CountingVfs { inner: StdVfs, syncs: Arc::clone(&syncs) });
    let group_fleet = Fleet::open("group", 1, FsyncPolicy::Always, u64::MAX, Some(counting));
    let syncs_before = syncs.load(Ordering::Relaxed);
    let group_per_sec = admissions_per_sec(&group_fleet, group_threads, n_group / group_threads);
    let group_records = (n_group / group_threads * group_threads) as u64;
    let group_fsyncs = (syncs.load(Ordering::Relaxed) - syncs_before).max(1);
    group_fleet.close();

    // Pipelined flights: the serving-loop shape, still one durable fsync ack
    // per admission but batches deep enough to amortize it away entirely.
    let (pipe_threads, pipe_depth) = (4, if smoke { 64 } else { 256 });
    let pipe_syncs = Arc::new(AtomicU64::new(0));
    let pipe_counting: Arc<dyn Vfs> = Arc::new(CountingVfs { inner: StdVfs, syncs: Arc::clone(&pipe_syncs) });
    let pipe_fleet = Fleet::open("pipelined", 1, FsyncPolicy::Always, u64::MAX, Some(pipe_counting));
    let pipe_before = pipe_syncs.load(Ordering::Relaxed);
    let pipe_per_sec = pipelined_admissions_per_sec(&pipe_fleet, pipe_threads, n_group / pipe_threads, pipe_depth);
    let pipe_records = (n_group / pipe_threads * pipe_threads) as u64;
    let pipe_fsyncs = (pipe_syncs.load(Ordering::Relaxed) - pipe_before).max(1);
    pipe_fleet.close();

    // ---- fleet sweep: shards × fsync policy, with snapshot compaction ----------------
    // Aggressive per-shard checkpoints (every `snapshot_every` records) make
    // compaction I/O a first-order cost, as it is for any long-lived fleet;
    // each shard serializes only its own cameras, so the cost per admission
    // falls with the shard count.
    let sweep_threads = 16;
    let mut sweep = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        for (fsync, label) in [(FsyncPolicy::Never, "never"), (FsyncPolicy::Always, "always")] {
            let fleet = Fleet::open(&format!("sweep-{shards}-{label}"), shards, fsync, snapshot_every, None);
            let rate = admissions_per_sec(&fleet, sweep_threads, n_sweep / sweep_threads);
            fleet.close();
            eprintln!("  shards={shards} fsync={label}: {rate:.0}/s");
            sweep.push((shards, label, rate));
        }
    }
    let rate_of = |shards: usize, label: &str| {
        sweep.iter().find(|(s, l, _)| *s == shards && *l == label).map(|(_, _, r)| *r).unwrap_or(0.0)
    };

    let sweep_json = sweep
        .iter()
        .map(|(shards, label, rate)| {
            format!("    {{\"shards\": {shards}, \"fsync\": \"{label}\", \"admissions_per_sec\": {rate:.0}}}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"pr\": 9,\n  \"bench\": \"fleet sharding: group-commit WAL + per-shard gates and snapshots\",\n  \
         \"available_cores\": {cores},\n  \
         \"config\": {{\"fleet_cameras\": {FLEET_CAMERAS}, \"ledger_secs\": {LEDGER_SECS}, \
         \"window_secs\": {WINDOW_SECS}, \"snapshot_every\": {snapshot_every}, \
         \"sweep_threads\": {sweep_threads}, \"smoke\": {smoke}}},\n  \
         \"group_commit\": [\n    \
         {{\"mode\": \"serial_append\", \"threads\": 1, \"iterations\": {n_serial}, \"admissions_per_sec\": {serial_per_sec:.0}}},\n    \
         {{\"mode\": \"group_commit\", \"threads\": {group_threads}, \"iterations\": {group_records}, \
         \"admissions_per_sec\": {group_per_sec:.0}, \"fsyncs\": {group_fsyncs}, \"records_per_fsync\": {:.1}}},\n    \
         {{\"mode\": \"group_commit_pipelined\", \"threads\": {pipe_threads}, \"pipeline_depth\": {pipe_depth}, \
         \"iterations\": {pipe_records}, \"admissions_per_sec\": {pipe_per_sec:.0}, \"fsyncs\": {pipe_fsyncs}, \
         \"records_per_fsync\": {:.1}}}\n  ],\n  \
         \"fleet_sweep\": [\n{sweep_json}\n  ],\n  \
         \"scaling\": {{\"group_commit_vs_serial\": {:.2}, \"pipelined_vs_serial\": {:.2}, \
         \"never_8_shards_vs_1\": {:.2}, \"always_8_shards_vs_1\": {:.2}}},\n  \
         \"notes\": \"single-core host: fleet_sweep scaling reflects per-shard snapshot compaction \
         (each shard checkpoints only its own cameras), not thread parallelism; fsync=always sweep \
         cells trade checkpoint cadence against group-commit batch size\"\n}}\n",
        group_records as f64 / group_fsyncs as f64,
        pipe_records as f64 / pipe_fsyncs as f64,
        group_per_sec / serial_per_sec.max(1e-9),
        pipe_per_sec / serial_per_sec.max(1e-9),
        rate_of(8, "never") / rate_of(1, "never").max(1e-9),
        rate_of(8, "always") / rate_of(1, "always").max(1e-9),
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_pr9_fleet: wrote {out_path}");
        print!("{json}");
    }
}
