//! Regenerates the paper's table6 masking effectiveness experiment. Pass `--full` for the
//! larger (slower) configuration.

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        privid_bench::Scale::full()
    } else {
        privid_bench::Scale::quick()
    };
    print!("{}", privid_bench::table6_masking_effectiveness(scale));
}
