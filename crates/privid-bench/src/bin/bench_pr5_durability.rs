//! Machine-readable durability benchmark snapshot.
//!
//! Measures the PR-5 write-ahead-log path and writes the results as JSON so
//! the repo's perf trajectory is tracked PR over PR:
//!
//! 1. `admissions` — journaled admission throughput (check → WAL append →
//!    debit) through the real [`privid::AdmissionController`], at three
//!    durability levels: `in_memory` (no journal), `wal_fsync_never`
//!    (journal to the OS page cache) and `wal_fsync_always` (fsync per
//!    record — the power-loss-proof setting). The gap between the three is
//!    the price of each durability rung.
//! 2. `recovery` — wall-clock to recover a ledger from (a) a long debit log
//!    (100k admit records; replay-bound) and (b) the same state after a
//!    checkpoint (snapshot-bound) — the cost `snapshot_every` bounds.
//!
//! Usage: `bench_pr5_durability [--smoke] [--out PATH]` (default
//! `BENCH_PR5.json` in the current directory; CI runs `--smoke --out /dev/null`).

use privid::store::DebitRange;
use privid::{
    AdmissionController, AdmissionJournal, AdmissionRequest, BudgetLedger, FsyncPolicy, Record, StoreError,
    TimeSpan, WalOptions, WalStore,
};
use std::path::PathBuf;
use std::time::Instant;

const LEDGER_SECS: f64 = 100_000.0;
const WINDOW_SECS: f64 = 10.0;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-bench-pr5-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The serving layer's journal shape: one atomic admit record carrying the
/// resolved slot ranges, appended between check and debit.
struct Journal<'a> {
    store: &'a WalStore,
}

impl AdmissionJournal for Journal<'_> {
    fn record_admit(
        &self,
        requests: &[AdmissionRequest<'_>],
        epsilon: f64,
    ) -> Result<Option<privid::CommitWait>, StoreError> {
        let mut debits = Vec::with_capacity(requests.len());
        for r in requests {
            let (lo, hi) = r.ledger.debit_slot_range(&r.window).expect("checked window resolves");
            debits.push(DebitRange { camera: "cam".into(), lo: lo as u64, hi: hi as u64 });
        }
        self.store.append(Record::Admit { epsilon, debits }).map(|_| None)
    }
    fn record_rollback(&self, _: &[AdmissionRequest<'_>], _: usize, _: f64) {}
}

fn register_cam(store: &WalStore, epsilon: f64) {
    store
        .append(Record::RegisterCamera {
            name: "cam".into(),
            generation: 0,
            live: false,
            slot_secs: 1.0,
            duration_secs: LEDGER_SECS,
            initial_epsilon: epsilon,
            rho_secs: 30.0,
            k: 2,
        })
        .expect("camera registration journals");
}

/// Run `n` journaled admissions over rotating disjoint windows; returns
/// admissions per second.
fn admissions_per_sec(n: usize, store: Option<&WalStore>) -> f64 {
    let ledger = BudgetLedger::new(LEDGER_SECS, 1e9);
    let controller = AdmissionController::new();
    let journal = store.map(|store| Journal { store });
    let windows = (LEDGER_SECS / WINDOW_SECS) as usize;
    let start = Instant::now();
    for i in 0..n {
        let begin = ((i % windows) as f64) * WINDOW_SECS;
        let requests =
            [AdmissionRequest { ledger: &ledger, window: TimeSpan::between_secs(begin, begin + WINDOW_SECS), rho_margin: 30.0 }];
        controller
            .admit_journaled(&requests, 1e-6, journal.as_ref().map(|j| j as &dyn AdmissionJournal))
            .expect("bench admission admitted");
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    // fsync=Always pays a disk round-trip per record: keep its iteration
    // count low so the bench stays snappy while the rate stays measurable.
    let (n_mem, n_never, n_always, n_log) = if smoke { (20_000, 2_000, 50, 5_000) } else { (200_000, 20_000, 300, 100_000) };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("bench_pr5_durability: {n_log}-record recovery log, {cores} core(s)");

    // ---- journaled admission throughput ----
    let mem_per_sec = admissions_per_sec(n_mem, None);
    let dir_never = temp_dir("never");
    let (store_never, _) =
        WalStore::open_with(&dir_never, FsyncPolicy::Never, WalOptions { snapshot_every: u64::MAX }).unwrap();
    register_cam(&store_never, 1e9);
    let never_per_sec = admissions_per_sec(n_never, Some(&store_never));
    drop(store_never);
    let _ = std::fs::remove_dir_all(&dir_never);

    let dir_always = temp_dir("always");
    let (store_always, _) =
        WalStore::open_with(&dir_always, FsyncPolicy::Always, WalOptions { snapshot_every: u64::MAX }).unwrap();
    register_cam(&store_always, 1e9);
    let always_per_sec = admissions_per_sec(n_always, Some(&store_always));
    drop(store_always);
    let _ = std::fs::remove_dir_all(&dir_always);

    // ---- recovery: long-log replay vs snapshot ----
    let dir = temp_dir("recovery");
    {
        let (store, _) =
            WalStore::open_with(&dir, FsyncPolicy::Never, WalOptions { snapshot_every: u64::MAX }).unwrap();
        register_cam(&store, 1e9);
        let windows = (LEDGER_SECS / WINDOW_SECS) as usize;
        for i in 0..n_log {
            let lo = ((i % windows) as u64) * WINDOW_SECS as u64;
            store
                .append(Record::Admit {
                    epsilon: 1e-6,
                    debits: vec![DebitRange { camera: "cam".into(), lo, hi: lo + WINDOW_SECS as u64 }],
                })
                .unwrap();
        }
    }
    let log_bytes = std::fs::metadata(dir.join("wal.log")).unwrap().len();
    let start = Instant::now();
    let (store, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovered.report.records_replayed, n_log as u64 + 1);
    store.checkpoint().unwrap();
    drop(store);
    let start = Instant::now();
    let (_store, recovered) = WalStore::open(&dir, FsyncPolicy::Never).unwrap();
    let snapshot_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovered.report.records_replayed, 0, "everything came from the snapshot");
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"pr\": 5,\n  \"bench\": \"durable privacy ledger (WAL + snapshots + recovery)\",\n  \
         \"available_cores\": {cores},\n  \
         \"config\": {{\"ledger_secs\": {LEDGER_SECS}, \"window_secs\": {WINDOW_SECS}, \
         \"recovery_log_records\": {n_log}, \"smoke\": {smoke}}},\n  \
         \"admissions\": [\n    \
         {{\"mode\": \"in_memory\", \"iterations\": {n_mem}, \"admissions_per_sec\": {mem_per_sec:.0}}},\n    \
         {{\"mode\": \"wal_fsync_never\", \"iterations\": {n_never}, \"admissions_per_sec\": {never_per_sec:.0}}},\n    \
         {{\"mode\": \"wal_fsync_always\", \"iterations\": {n_always}, \"admissions_per_sec\": {always_per_sec:.0}}}\n  ],\n  \
         \"recovery\": [\n    \
         {{\"mode\": \"log_replay\", \"records\": {n_log}, \"log_bytes\": {log_bytes}, \"millis\": {replay_ms:.2}, \
         \"records_per_sec\": {:.0}}},\n    \
         {{\"mode\": \"from_snapshot\", \"records\": {n_log}, \"millis\": {snapshot_ms:.2}}}\n  ],\n  \
         \"overheads\": {{\"wal_never_vs_memory\": {:.2}, \"fsync_always_vs_never\": {:.2}}}\n}}\n",
        n_log as f64 / (replay_ms / 1e3),
        mem_per_sec / never_per_sec.max(1e-9),
        never_per_sec / always_per_sec.max(1e-9),
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_pr5_durability: wrote {out_path}");
        print!("{json}");
    }
}
