//! Regenerates every table and figure of the paper in one run (the output
//! recorded in EXPERIMENTS.md). Pass `--full` for the larger configuration.

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        privid_bench::Scale::full()
    } else {
        privid_bench::Scale::quick()
    };
    print!("{}", privid_bench::run_all(scale));
}
