//! Regenerates the paper's table2 spatial split experiment. Pass `--full` for the
//! larger (slower) configuration.

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        privid_bench::Scale::full()
    } else {
        privid_bench::Scale::quick()
    };
    print!("{}", privid_bench::table2_spatial_split(scale));
}
