//! Machine-readable concurrent-serving benchmark snapshot.
//!
//! Measures the PR-3 serving layer under multi-analyst load and writes the
//! results as JSON so the repo's perf trajectory is tracked PR over PR:
//!
//! 1. `serial_1_analyst` — the full query set executed one query at a time
//!    (the `PrividSystem`-era serving model) on a fresh service.
//! 2. `concurrent_N_analysts` — the same query set partitioned over N analyst
//!    threads hammering one shared `QueryService`.
//! 3. `cold_pass` / `warm_pass` — the query set executed twice on one
//!    service: the second pass serves every PROCESS from the chunk cache,
//!    isolating the cache-hit speedup.
//!
//! Usage: `bench_pr3_concurrent [--smoke] [--out PATH]` (default
//! `BENCH_PR3.json` in the current directory; CI runs `--smoke --out /dev/null`).

use privid::{ChunkProcessor, Parallelism, PrivacyPolicy, QueryService, Scene, SceneConfig, SceneGenerator, UniqueEntrantProcessor};
use std::time::Instant;

struct Timing {
    mode: String,
    median_ms: f64,
    queries_per_sec: f64,
}

/// Median wall-clock of `samples` runs of `f`, after one warm-up run, in ms.
fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// The analyst workload: `n` queries with three distinct PROCESS identities
/// (staggered windows), so both cold execution and cache reuse are exercised.
fn analyst_queries(n: usize, window_secs: f64) -> Vec<(u64, String)> {
    (0..n)
        .map(|q| {
            let begin = (q % 3) as f64 * window_secs;
            let end = begin + window_secs;
            let query = format!(
                "SPLIT campus BEGIN {begin} END {end} BY TIME 5 sec STRIDE 0 sec INTO c;
                 PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
                 SELECT COUNT(*) FROM t CONSUMING 0.1;"
            );
            (q as u64 + 1, query)
        })
        .collect()
}

fn fresh_service(scene: &Scene) -> QueryService {
    // Engine parallelism 1: measured scaling comes from concurrent sessions,
    // not from intra-query workers.
    let service = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    service.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
    service.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    service
}

/// Run `queries` over `analysts` threads against one shared service.
fn run_concurrent(service: &QueryService, queries: &[(u64, String)], analysts: usize) {
    std::thread::scope(|scope| {
        for a in 0..analysts {
            let service = &service;
            let queries = &queries;
            scope.spawn(move || {
                for (seed, q) in queries.iter().skip(a).step_by(analysts) {
                    service.execute_text(*seed, q).expect("bench query admitted");
                }
            });
        }
    });
}

fn json_timings(timings: &[Timing]) -> String {
    timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"mode\": \"{}\", \"median_ms\": {:.3}, \"queries_per_sec\": {:.1}}}",
                t.mode, t.median_ms, t.queries_per_sec
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());

    let (hours, window_secs, n_queries, samples) = if smoke { (0.25, 120.0, 12, 3) } else { (0.5, 300.0, 48, 7) };
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(hours).with_arrival_scale(0.3)).generate();
    let queries = analyst_queries(n_queries, window_secs);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("bench_pr3_concurrent: {n_queries} queries, {samples} samples per mode, {cores} core(s)");

    // ---- serving throughput: serial vs N concurrent analysts ---------------
    // Every sample runs against its own cold service so it pays the full
    // sandbox cost — but the services are built *outside* the clock (scene
    // clone + registration would otherwise be a constant fraction of every
    // sample and skew the serial-vs-concurrent ratios).
    let mut serving = Vec::new();
    for analysts in [1usize, 2, 4, 8] {
        let mode =
            if analysts == 1 { "serial_1_analyst".to_string() } else { format!("concurrent_{analysts}_analysts") };
        let pool: Vec<QueryService> = (0..samples + 1).map(|_| fresh_service(&scene)).collect();
        let mut next = pool.iter();
        let ms = median_ms(samples, || {
            let service = next.next().expect("one pre-built service per sample");
            run_concurrent(service, &queries, analysts);
        });
        serving.push(Timing { mode, median_ms: ms, queries_per_sec: n_queries as f64 / (ms / 1e3) });
    }

    // ---- chunk cache: cold pass vs fully warm pass -------------------------
    let mut cache_stage = Vec::new();
    {
        let service = fresh_service(&scene);
        // The cold pass is timed directly (no warm-up — a warm-up would fill
        // the cache and defeat the measurement); it is cold exactly once.
        let cold = {
            let start = Instant::now();
            run_concurrent(&service, &queries, 4);
            start.elapsed().as_secs_f64() * 1e3
        };
        // After the cold run the cache holds every PROCESS identity;
        // subsequent passes only pay admission + SELECT + noise.
        let warm = median_ms(samples, || run_concurrent(&service, &queries, 4));
        let hit_rate = {
            let s = service.cache_stats();
            s.hits as f64 / (s.hits + s.misses).max(1) as f64
        };
        cache_stage.push(Timing { mode: "cold_pass".into(), median_ms: cold, queries_per_sec: n_queries as f64 / (cold / 1e3) });
        cache_stage.push(Timing { mode: "warm_pass".into(), median_ms: warm, queries_per_sec: n_queries as f64 / (warm / 1e3) });
        eprintln!("bench_pr3_concurrent: cache hit rate after all passes: {hit_rate:.3}");
    }

    let ms_of = |list: &[Timing], mode: &str| list.iter().find(|t| t.mode == mode).map(|t| t.median_ms).unwrap_or(0.0);
    let serial = ms_of(&serving, "serial_1_analyst");
    let conc4 = ms_of(&serving, "concurrent_4_analysts");
    let cold = ms_of(&cache_stage, "cold_pass");
    let warm = ms_of(&cache_stage, "warm_pass");

    let json = format!(
        "{{\n  \"pr\": 3,\n  \"bench\": \"concurrent multi-analyst serving\",\n  \"available_cores\": {cores},\n  \
         \"config\": {{\"video\": \"campus\", \"hours\": {hours}, \"window_secs\": {window_secs}, \
         \"queries\": {n_queries}, \"distinct_process_identities\": 3, \"samples\": {samples}, \
         \"smoke\": {smoke}}},\n  \"serving\": [\n{}\n  ],\n  \"cache\": [\n{}\n  ],\n  \"speedups\": {{\n    \
         \"concurrent_4_analysts_vs_serial\": {:.2},\n    \
         \"warm_cache_vs_cold_pass\": {:.2}\n  }}\n}}\n",
        json_timings(&serving),
        json_timings(&cache_stage),
        serial / conc4.max(1e-9),
        cold / warm.max(1e-9),
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_pr3_concurrent: wrote {out_path}");
        print!("{json}");
    }
}
