//! Machine-readable network front-end benchmark snapshot.
//!
//! Measures the PR-10 wire path and writes the results as JSON so the perf
//! trajectory is tracked PR over PR:
//!
//! 1. `codec` — pure privid-wire throughput, no sockets: encode and decode
//!    of a realistic 64-release `QueryOk` response and zero-copy decode of
//!    a `SubmitQuery` request (the server's hot receive path, which borrows
//!    the query text straight from the buffer).
//! 2. `loopback` — end-to-end admissions per second: the same query storm
//!    executed in-process (`execute_text_as`) and over a loopback TCP
//!    connection through the threaded server. The gap is the whole network
//!    front-end — framing, auth lookup, thread handoff, syscalls.
//!
//! Usage: `bench_pr10_wire [--smoke] [--out PATH]` (default
//! `BENCH_PR10.json` in the current directory; CI runs `--smoke --out /dev/null`).

use privid::query::exec::ReleaseValue;
use privid::server::{PrividClient, Server, ServerConfig, Token};
use privid::wire::{Request, Response};
use privid::{
    ChunkProcessor, NoisyRelease, NoisyValue, PrivacyPolicy, QueryResult, QueryService, SceneConfig,
    SceneGenerator, UniqueEntrantProcessor,
};
use std::sync::Arc;
use std::time::Instant;

const QUERY: &str = "
    SPLIT campus BEGIN 0 END 300 BY TIME 10 sec STRIDE 0 sec INTO chunks;
    PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
        WITH SCHEMA (count:NUMBER=0) INTO people;
    SELECT COUNT(*) FROM people GROUP BY chunk BIN 60 CONSUMING 0.01;";

const SCENE_SECS: f64 = 360.0;
const SCENE_SEED: u64 = 42;

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// A representative noised response: 64 mixed releases.
fn sample_response() -> Response {
    let releases = (0..64)
        .map(|i| NoisyRelease {
            label: format!("COUNT(*) group {i}"),
            group_key: Some(format!("bin {i}")),
            value: if i % 8 == 0 {
                NoisyValue::Key(format!("key-{i}"))
            } else {
                NoisyValue::Number(i as f64 + 0.125)
            },
            raw: if i % 8 == 0 {
                ReleaseValue::Candidates(vec![(format!("key-{i}"), 10.0), ("other".into(), 3.0)])
            } else {
                ReleaseValue::Number(i as f64)
            },
            sensitivity: 2.0,
            noise_scale: 4.0,
            epsilon: 0.01,
        })
        .collect();
    Response::QueryOk(QueryResult { releases, epsilon_spent: 0.64, chunks_processed: 30 })
}

/// (ops/s, MiB/s, frame bytes) for `reps` runs of `f` producing `bytes`.
fn rate(reps: usize, bytes: usize, elapsed_secs: f64) -> (f64, f64) {
    let ops = reps as f64 / elapsed_secs.max(1e-9);
    (ops, ops * bytes as f64 / (1024.0 * 1024.0))
}

fn service_with_campus() -> Arc<QueryService> {
    let service = Arc::new(QueryService::new());
    service
        .register_processor("person_counter", || {
            Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
        })
        .expect("processor registration");
    let config = SceneConfig::campus().with_duration_hours(SCENE_SECS / 3600.0).with_seed(SCENE_SEED);
    let scene = SceneGenerator::new(config).generate();
    // A deep ε budget so the storm measures throughput, not exhaustion.
    service.register_camera("campus", scene, PrivacyPolicy::new(60.0, 2, 10_000.0)).expect("camera registration");
    service
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    let (codec_reps, storm_queries) = if smoke { (2_000, 40) } else { (50_000, 400) };
    eprintln!("bench_pr10_wire: {codec_reps} codec reps, {storm_queries}-query storms");

    // ---- 1. codec throughput (sans-IO) --------------------------------------
    let response = sample_response();
    let mut frame = Vec::new();
    response.encode(&mut frame).expect("encode");
    let frame_bytes = frame.len();

    let start = Instant::now();
    for _ in 0..codec_reps {
        let mut out = Vec::new();
        response.encode(&mut out).expect("encode");
        std::hint::black_box(&out);
    }
    let (enc_ops, enc_mibs) = rate(codec_reps, frame_bytes, start.elapsed().as_secs_f64());

    let payload = &frame[privid::wire::HEADER_LEN..];
    let opcode = frame[3];
    let start = Instant::now();
    for _ in 0..codec_reps {
        let decoded = Response::decode(opcode, payload).expect("decode");
        std::hint::black_box(&decoded);
    }
    let (dec_ops, dec_mibs) = rate(codec_reps, frame_bytes, start.elapsed().as_secs_f64());

    let mut req_frame = Vec::new();
    Request::SubmitQuery { seed: 1, text: QUERY }.encode(&mut req_frame).expect("encode");
    let req_payload = &req_frame[privid::wire::HEADER_LEN..];
    let req_opcode = req_frame[3];
    let start = Instant::now();
    for _ in 0..codec_reps {
        // The server's hot path: zero-copy — the query text is borrowed
        // from the payload, not copied out of it.
        let decoded = Request::decode(req_opcode, req_payload).expect("decode");
        std::hint::black_box(&decoded);
    }
    let (req_ops, req_mibs) = rate(codec_reps, req_frame.len(), start.elapsed().as_secs_f64());

    eprintln!(
        "  codec: response encode {enc_ops:.0}/s ({enc_mibs:.0} MiB/s), decode {dec_ops:.0}/s \
         ({dec_mibs:.0} MiB/s), request decode {req_ops:.0}/s ({req_mibs:.0} MiB/s), frame {frame_bytes} B"
    );

    // ---- 2. loopback vs in-process admissions/s -----------------------------
    // Same storm twice: distinct seeds over one warmed camera, so chunk
    // processing is cached and the measured gap is admission + transport.
    let service = service_with_campus();
    service.execute_text(0, QUERY).expect("warm-up");

    let start = Instant::now();
    for seed in 1..=storm_queries as u64 {
        let result = service.execute_text_as("bench", seed, QUERY).expect("in-process query");
        std::hint::black_box(&result);
    }
    let in_process_secs = start.elapsed().as_secs_f64();
    let in_process_qps = storm_queries as f64 / in_process_secs.max(1e-9);

    let server = Server::start(Arc::clone(&service), ServerConfig::new(vec![
        Token::analyst("bench-token", "bench"),
    ]))
    .expect("server start");
    let addr = server.addr().to_string();
    let mut client = PrividClient::connect(&addr, "bench-token").expect("connect");
    client.submit_query(0, QUERY).expect("loopback warm-up");

    let mut per_call_ms = Vec::with_capacity(storm_queries);
    let start = Instant::now();
    for seed in 1..=storm_queries as u64 {
        let call = Instant::now();
        let result = client.submit_query(seed + 1_000_000, QUERY).expect("loopback query");
        per_call_ms.push(call.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&result);
    }
    let loopback_secs = start.elapsed().as_secs_f64();
    let loopback_qps = storm_queries as f64 / loopback_secs.max(1e-9);
    let loopback_median_ms = median(per_call_ms);
    server.shutdown();

    eprintln!(
        "  loopback: {in_process_qps:.0} q/s in-process vs {loopback_qps:.0} q/s over TCP \
         (median {loopback_median_ms:.3} ms/call, overhead x{:.2})",
        in_process_qps / loopback_qps.max(1e-9)
    );

    let json = format!(
        "{{\n  \"bench\": \"pr10_wire\",\n  \"smoke\": {smoke},\n  \"codec\": {{\n    \
         \"frame_bytes\": {frame_bytes},\n    \
         \"response_encode_per_sec\": {enc_ops:.1},\n    \"response_encode_mib_per_sec\": {enc_mibs:.1},\n    \
         \"response_decode_per_sec\": {dec_ops:.1},\n    \"response_decode_mib_per_sec\": {dec_mibs:.1},\n    \
         \"request_decode_per_sec\": {req_ops:.1},\n    \"request_decode_mib_per_sec\": {req_mibs:.1}\n  }},\n  \
         \"loopback\": {{\n    \"storm_queries\": {storm_queries},\n    \
         \"in_process_queries_per_sec\": {in_process_qps:.1},\n    \
         \"loopback_queries_per_sec\": {loopback_qps:.1},\n    \
         \"loopback_median_ms\": {loopback_median_ms:.3},\n    \
         \"wire_overhead_factor\": {:.3}\n  }}\n}}\n",
        in_process_qps / loopback_qps.max(1e-9)
    );
    if out_path != "/dev/null" {
        std::fs::write(&out_path, &json).expect("write snapshot");
        eprintln!("  wrote {out_path}");
    }
}
