//! Machine-readable incremental-aggregation benchmark snapshot.
//!
//! Measures the PR-8 data plane and writes the results as JSON so the perf
//! trajectory is tracked PR over PR:
//!
//! 1. `window_sweep` — a live camera with one standing query per window
//!    length, footage appended batch by batch. The incremental path
//!    pre-folds each append's newly closed chunks, so the append that fires
//!    a window pays only the final batch; the seed-style path (aggregate
//!    tier disabled, chunk cache untouched) executes the whole window at
//!    firing time. Per-firing latency should stay flat as the window grows
//!    10× where the seed-style path grows ~linearly.
//! 2. `shared_subplan` — eight analysts repeatedly issuing the *same*
//!    foldable sub-plan against an ingested recording, tier-1 warm in both
//!    modes. With tier 2, the first fold is shared and every later query is
//!    a state clone; without it, every query re-folds the whole table.
//!    Reports aggregate throughput and the tier-2 hit rate.
//!
//! Usage: `bench_pr8_standing [--smoke] [--out PATH]` (default
//! `BENCH_PR8.json` in the current directory; CI runs `--smoke --out /dev/null`).

use privid::{
    CarTableProcessor, ChunkProcessor, FrameBatch, Parallelism, PrivacyPolicy, QueryService, Scene, SceneConfig,
    SceneGenerator, TrackedObject, UniqueEntrantProcessor,
};
use std::time::Instant;

const BATCH_SECS: f64 = 30.0;
const CHUNK_SECS: f64 = 5.0;
const ANALYSTS: usize = 8;

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Partition a generated scene into frame batches by each object's first
/// appearance.
fn batches_of(scene: &Scene, batch_secs: f64) -> Vec<FrameBatch> {
    let n = (scene.span.end.as_secs() / batch_secs).ceil() as usize;
    let mut per_batch: Vec<Vec<TrackedObject>> = vec![Vec::new(); n];
    for obj in &scene.objects {
        let first = obj.first_seen().map(|t| t.as_secs()).unwrap_or(0.0);
        per_batch[((first / batch_secs).floor() as usize).min(n - 1)].push(obj.clone());
    }
    per_batch.into_iter().map(|objects| FrameBatch::new(batch_secs, objects)).collect()
}

fn live_service(scene: &Scene, incremental: bool) -> QueryService {
    let service = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    // The seed-style baseline keeps the chunk cache (tier 1) and loses only
    // the aggregate tier, which also disables incremental standing firing.
    let service = if incremental { service } else { service.with_agg_cache_capacity(0) };
    service
        .register_live_camera("campus", scene.frame_rate, scene.frame_size, PrivacyPolicy::new(90.0, 2, 1e9))
        .expect("camera registration must succeed");
    service
        .register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>)
        .expect("processor registration must succeed");
    service
        .register_processor("car_table", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>)
        .expect("processor registration must succeed");
    service
}

fn standing_text(window_secs: f64) -> String {
    format!(
        "SPLIT campus BEGIN 0 END {window_secs} BY TIME {CHUNK_SECS} sec STRIDE 0 sec INTO c;
         PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
         SELECT SUM(range(count, 0, 20)) FROM t CONSUMING 0.1;"
    )
}

/// One window-sweep cell: ingest `footage` as 30-second batches under a
/// standing query of length `window_secs`, timing every append. Returns
/// (median firing-append ms, median quiet-append ms, firings).
fn sweep_cell(scene: &Scene, window_secs: f64, incremental: bool) -> (f64, f64, usize) {
    let svc = live_service(scene, incremental);
    svc.register_standing_query("sweep", 7, &standing_text(window_secs)).expect("standing registered");
    let (mut firing, mut quiet) = (Vec::new(), Vec::new());
    for batch in batches_of(scene, BATCH_SECS) {
        let start = Instant::now();
        let outcome = svc.append_frames("campus", batch).expect("append admitted");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if outcome.standing_fired > 0 { firing.push(ms) } else { quiet.push(ms) }
    }
    let n = firing.len();
    (median(firing), median(quiet), n)
}

/// The shared-sub-plan storm: `ANALYSTS` threads issue `reps` copies each of
/// one foldable query (distinct seeds) against a pre-warmed service.
/// Returns (total ms, queries).
fn storm(svc: &QueryService, text: &str, reps: usize) -> (f64, usize) {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for a in 0..ANALYSTS {
            let svc = &svc;
            scope.spawn(move || {
                for r in 0..reps {
                    let seed = 1 + (a * reps + r) as u64;
                    svc.execute_text(seed, text).expect("bench query admitted");
                }
            });
        }
    });
    (start.elapsed().as_secs_f64() * 1e3, ANALYSTS * reps)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let (windows, sweep_secs, reps) =
        if smoke { (vec![60.0, 600.0], 1200.0, 4) } else { (vec![60.0, 180.0, 600.0], 1800.0, 12) };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("bench_pr8_standing: windows {windows:?} s, {ANALYSTS} analysts x {reps} reps, {cores} core(s)");

    // ---- 1. window-length sweep: incremental vs seed-style firing latency ----
    // One fixed recording for every window length: each cell ingests the same
    // batches, so a firing append's non-window work is identical across the
    // sweep and the latency trend isolates the window length itself.
    let sweep_scene = SceneGenerator::new(
        SceneConfig::campus().with_duration_hours(sweep_secs / 3600.0).with_arrival_scale(0.3),
    )
    .generate();
    let mut sweep_rows = Vec::new();
    let mut incremental_latencies = Vec::new();
    for &w in &windows {
        let (inc_fire, inc_quiet, firings) = sweep_cell(&sweep_scene, w, true);
        let (base_fire, base_quiet, _) = sweep_cell(&sweep_scene, w, false);
        eprintln!(
            "  window {w:>5.0} s: firing append {inc_fire:.2} ms incremental vs {base_fire:.2} ms seed-style \
             ({firings} firings)"
        );
        incremental_latencies.push(inc_fire);
        sweep_rows.push(format!(
            "    {{\"window_secs\": {w}, \"firings\": {firings}, \
             \"incremental\": {{\"firing_append_ms\": {inc_fire:.3}, \"quiet_append_ms\": {inc_quiet:.3}}}, \
             \"seed_style\": {{\"firing_append_ms\": {base_fire:.3}, \"quiet_append_ms\": {base_quiet:.3}}}, \
             \"firing_speedup\": {:.2}}}",
            base_fire / inc_fire.max(1e-9)
        ));
    }
    let flatness = {
        let (lo, hi) = incremental_latencies
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        hi / lo.max(1e-9)
    };

    // ---- 2. eight analysts sharing one sub-plan ------------------------------
    // A car-dominated scene and a row-per-car processor give the SELECT folds
    // real work (tens of thousands of rows), which is what tier 2 amortizes:
    // with the aggregate tier off every query re-folds the whole table; with
    // it on, the first fold is shared and later queries clone a few states.
    let scene =
        SceneGenerator::new(SceneConfig::highway().with_duration_hours(1.0).with_arrival_scale(0.2)).generate();
    let query = "SPLIT campus BEGIN 0 END 3600 BY TIME 5 sec STRIDE 0 sec INTO c;
         PROCESS c USING car_table TIMEOUT 1 sec PRODUCING 50 ROWS
             WITH SCHEMA (plate:STRING=\"\", color:STRING=\"\", speed:NUMBER=0) INTO t;
         SELECT SUM(range(speed, 0, 200)) FROM t CONSUMING 0.1;
         SELECT ARGMAX(color) FROM t CONSUMING 0.1;";
    let mut shared_cells = Vec::new();
    for (mode, incremental) in [("tier2_shared", true), ("fold_every_query", false)] {
        let svc = live_service(&scene, incremental);
        for batch in batches_of(&scene, BATCH_SECS) {
            svc.append_frames("campus", batch).expect("append admitted");
        }
        svc.execute_text(0, query).expect("warm-up admitted"); // tier 1 warm in both modes
        let (ms, queries) = storm(&svc, query, reps);
        let stats = svc.agg_cache_stats();
        let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
        eprintln!("  {mode}: {queries} queries in {ms:.1} ms ({:.0} q/s), tier-2 hit rate {hit_rate:.3}", queries as f64 / (ms / 1e3));
        shared_cells.push((mode, ms, queries, hit_rate));
    }
    let shared_json: Vec<String> = shared_cells
        .iter()
        .map(|(mode, ms, queries, hit_rate)| {
            format!(
                "    {{\"mode\": \"{mode}\", \"total_ms\": {ms:.3}, \"queries\": {queries}, \
                 \"queries_per_sec\": {:.1}, \"tier2_hit_rate\": {hit_rate:.3}}}",
                *queries as f64 / (ms / 1e3)
            )
        })
        .collect();
    let throughput_gain = shared_cells[1].1 / shared_cells[0].1.max(1e-9);

    let json = format!(
        "{{\n  \"pr\": 8,\n  \"bench\": \"incremental aggregation & shared sub-plans\",\n  \
         \"available_cores\": {cores},\n  \
         \"config\": {{\"video\": \"campus\", \"batch_secs\": {BATCH_SECS}, \"chunk_secs\": {CHUNK_SECS}, \
         \"analysts\": {ANALYSTS}, \"reps\": {reps}, \"smoke\": {smoke}}},\n  \
         \"window_sweep\": [\n{}\n  ],\n  \
         \"incremental_firing_flatness_max_over_min\": {flatness:.2},\n  \
         \"shared_subplan\": [\n{}\n  ],\n  \
         \"speedups\": {{\"shared_subplan_throughput\": {throughput_gain:.2}}}\n}}\n",
        sweep_rows.join(",\n"),
        shared_json.join(",\n"),
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_pr8_standing: wrote {out_path}");
        print!("{json}");
    }
}
