//! Machine-readable fault-tolerance benchmark snapshot.
//!
//! PR 7 pushed every filesystem touch of the WAL behind the [`Vfs`] trait so
//! faults can be injected; this bench proves the indirection is free and
//! prices the new degraded-mode machinery:
//!
//! 1. `admissions` — journaled admission throughput (check → WAL append →
//!    debit) at `fsync=Never` and `fsync=Always`, each through the direct
//!    [`StdVfs`] and through a disarmed (empty-plan) [`FaultVfs`] decorator.
//!    `StdVfs` numbers are directly comparable to `BENCH_PR5.json` (which
//!    predates the indirection): the `Box<dyn VfsFile>` hop should cost ≈0.
//!    The `FaultVfs` passthrough ratio is the price a chaos harness pays.
//! 2. `retry_path` — mean `append_frames` latency on a durable service when
//!    every append's first journal write fails with a scripted transient
//!    EIO, versus a clean run: the bounded-backoff retry's added latency.
//!
//! Usage: `bench_pr7_faults [--smoke] [--out PATH]` (default
//! `BENCH_PR7.json` in the current directory; CI runs `--smoke --out /dev/null`).

use privid::store::DebitRange;
use privid::{
    AdmissionController, AdmissionJournal, AdmissionRequest, BudgetLedger, Durability, FaultKind, FaultOp, FaultVfs,
    FrameBatch, FrameRate, FrameSize, FsyncPolicy, Parallelism, PrivacyPolicy, QueryService, Record, StdVfs,
    StoreError, StoreRetryPolicy, TimeSpan, Vfs, WalOptions, WalStore,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const LEDGER_SECS: f64 = 100_000.0;
const WINDOW_SECS: f64 = 10.0;
const RETRY_BACKOFF_MS: u64 = 1;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privid-bench-pr7-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The serving layer's journal shape (same as `bench_pr5_durability`, so the
/// throughput numbers stay comparable PR over PR).
struct Journal<'a> {
    store: &'a WalStore,
}

impl AdmissionJournal for Journal<'_> {
    fn record_admit(
        &self,
        requests: &[AdmissionRequest<'_>],
        epsilon: f64,
    ) -> Result<Option<privid::CommitWait>, StoreError> {
        let mut debits = Vec::with_capacity(requests.len());
        for r in requests {
            let (lo, hi) = r.ledger.debit_slot_range(&r.window).expect("checked window resolves");
            debits.push(DebitRange { camera: "cam".into(), lo: lo as u64, hi: hi as u64 });
        }
        self.store.append(Record::Admit { epsilon, debits }).map(|_| None)
    }
    fn record_rollback(&self, _: &[AdmissionRequest<'_>], _: usize, _: f64) {}
}

fn register_cam(store: &WalStore) {
    store
        .append(Record::RegisterCamera {
            name: "cam".into(),
            generation: 0,
            live: false,
            slot_secs: 1.0,
            duration_secs: LEDGER_SECS,
            initial_epsilon: 1e9,
            rho_secs: 30.0,
            k: 2,
        })
        .expect("camera registration journals");
}

/// Journaled admissions per second through a store opened over `vfs`.
fn admissions_per_sec(n: usize, fsync: FsyncPolicy, vfs: Arc<dyn Vfs>) -> f64 {
    let dir = temp_dir("adm");
    let (store, _) = WalStore::open_with_vfs(&dir, fsync, WalOptions { snapshot_every: u64::MAX }, vfs).unwrap();
    register_cam(&store);
    let ledger = BudgetLedger::new(LEDGER_SECS, 1e9);
    let controller = AdmissionController::new();
    let journal = Journal { store: &store };
    let windows = (LEDGER_SECS / WINDOW_SECS) as usize;
    let start = Instant::now();
    for i in 0..n {
        let begin = ((i % windows) as f64) * WINDOW_SECS;
        let requests =
            [AdmissionRequest { ledger: &ledger, window: TimeSpan::between_secs(begin, begin + WINDOW_SECS), rho_margin: 30.0 }];
        controller
            .admit_journaled(&requests, 1e-6, Some(&journal as &dyn AdmissionJournal))
            .expect("bench admission admitted");
    }
    let rate = n as f64 / start.elapsed().as_secs_f64();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    rate
}

/// Mean `append_frames` latency (µs) on a durable service; with `faulted`,
/// every append's first journal write fails with a scripted transient EIO so
/// each one travels the bounded-backoff retry path exactly once.
fn append_latency_us(n: usize, faulted: bool) -> f64 {
    let dir = temp_dir(if faulted { "retry" } else { "clean" });
    let fault = FaultVfs::over_std();
    let svc = QueryService::builder()
        .parallelism(Parallelism::Fixed(1))
        .durability(Durability::wal(&dir, FsyncPolicy::Never))
        .storage_vfs(fault.clone())
        .append_retry(StoreRetryPolicy { max_retries: 3, base_backoff: Duration::from_millis(RETRY_BACKOFF_MS) })
        .build()
        .expect("durable service builds");
    svc.register_live_camera("cam", FrameRate::new(1.0), FrameSize::new(8, 8), PrivacyPolicy::new(10.0, 2, 1e9))
        .expect("registration journals"); // journal write #1
    if faulted {
        // Appends alternate fault-then-retry: write 2+2k is append k's first
        // attempt (scripted EIO), write 3+2k its successful retry.
        for k in 0..n as u64 {
            fault.fail_nth(FaultOp::Write, 2 + 2 * k, FaultKind::Eio);
        }
    }
    let start = Instant::now();
    for _ in 0..n {
        svc.append_frames("cam", FrameBatch::empty(1.0)).expect("append lands, retried if faulted");
    }
    let total = start.elapsed();
    if faulted {
        assert_eq!(fault.injected(), n as u64, "every append must have travelled the retry path once");
    }
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    total.as_secs_f64() * 1e6 / n as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());

    let (n_never, n_always, n_retry) = if smoke { (2_000, 50, 50) } else { (20_000, 300, 200) };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!("bench_pr7_faults: {n_never}/{n_always} admissions, {n_retry} retried appends, {cores} core(s)");

    // ---- Vfs indirection: StdVfs vs disarmed FaultVfs, both fsync levels ----
    // Throwaway warmup: the first store pays page-cache and allocator
    // cold-start that would otherwise bias whichever mode runs first.
    let _ = admissions_per_sec(n_never / 4, FsyncPolicy::Never, Arc::new(StdVfs));
    let never_std = admissions_per_sec(n_never, FsyncPolicy::Never, Arc::new(StdVfs));
    let never_fault = admissions_per_sec(n_never, FsyncPolicy::Never, FaultVfs::over_std() as Arc<dyn Vfs>);
    let always_std = admissions_per_sec(n_always, FsyncPolicy::Always, Arc::new(StdVfs));
    let always_fault = admissions_per_sec(n_always, FsyncPolicy::Always, FaultVfs::over_std() as Arc<dyn Vfs>);

    // ---- retry path: one scripted transient fault per append ----
    let clean_us = append_latency_us(n_retry, false);
    let retried_us = append_latency_us(n_retry, true);

    let json = format!(
        "{{\n  \"pr\": 7,\n  \"bench\": \"storage vfs indirection + fault retry path\",\n  \
         \"available_cores\": {cores},\n  \
         \"config\": {{\"ledger_secs\": {LEDGER_SECS}, \"window_secs\": {WINDOW_SECS}, \"smoke\": {smoke}}},\n  \
         \"admissions\": [\n    \
         {{\"mode\": \"wal_fsync_never_stdvfs\", \"iterations\": {n_never}, \"admissions_per_sec\": {never_std:.0}}},\n    \
         {{\"mode\": \"wal_fsync_never_faultvfs_passthrough\", \"iterations\": {n_never}, \"admissions_per_sec\": {never_fault:.0}}},\n    \
         {{\"mode\": \"wal_fsync_always_stdvfs\", \"iterations\": {n_always}, \"admissions_per_sec\": {always_std:.0}}},\n    \
         {{\"mode\": \"wal_fsync_always_faultvfs_passthrough\", \"iterations\": {n_always}, \"admissions_per_sec\": {always_fault:.0}}}\n  ],\n  \
         \"overheads\": {{\"faultvfs_passthrough_vs_std_never\": {:.3}, \"faultvfs_passthrough_vs_std_always\": {:.3}}},\n  \
         \"retry_path\": {{\"appends\": {n_retry}, \"clean_mean_us\": {clean_us:.1}, \
         \"one_transient_fault_mean_us\": {retried_us:.1}, \"added_latency_us\": {:.1}, \
         \"retry_policy\": {{\"max_retries\": 3, \"base_backoff_ms\": {RETRY_BACKOFF_MS}}}}}\n}}\n",
        never_std / never_fault.max(1e-9),
        always_std / always_fault.max(1e-9),
        retried_us - clean_us,
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_pr7_faults: wrote {out_path}");
        print!("{json}");
    }
}
