//! Machine-readable live-ingestion benchmark snapshot.
//!
//! Measures the PR-4 streaming path and writes the results as JSON so the
//! repo's perf trajectory is tracked PR over PR:
//!
//! 1. `append_only` — a camera ingesting its whole recording as frame
//!    batches (copy-on-write snapshot, incremental index, ledger growth).
//! 2. `append_with_standing` — the same ingest with a standing query whose
//!    period equals the batch size, so every append also executes one
//!    standing-query firing; the delta to (1) is the per-firing latency.
//! 3. `cold_pass` / `warm_pass` — closed-window analyst queries against the
//!    fully ingested recording, cold then cache-warm: closed-window entries
//!    stay warm across appends, so the steady-state hit rate is what a
//!    dashboard replaying recent windows would see.
//!
//! Usage: `bench_pr4_streaming [--smoke] [--out PATH]` (default
//! `BENCH_PR4.json` in the current directory; CI runs `--smoke --out /dev/null`).

use privid::{
    ChunkProcessor, FrameBatch, Parallelism, PrivacyPolicy, QueryService, Scene, SceneConfig, SceneGenerator,
    TrackedObject, UniqueEntrantProcessor,
};
use std::time::Instant;

/// Median wall-clock of `samples` runs of `f(sample_index)`, in ms. No
/// warm-up run: every sample gets pre-built state via its index.
fn median_ms(samples: usize, mut f: impl FnMut(usize)) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|s| {
            let start = Instant::now();
            f(s);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Partition a generated scene into frame batches by each object's first
/// appearance.
fn batches_of(scene: &Scene, batch_secs: f64) -> Vec<FrameBatch> {
    let n = (scene.span.end.as_secs() / batch_secs).ceil() as usize;
    let mut per_batch: Vec<Vec<TrackedObject>> = vec![Vec::new(); n];
    for obj in &scene.objects {
        let first = obj.first_seen().map(|t| t.as_secs()).unwrap_or(0.0);
        per_batch[((first / batch_secs).floor() as usize).min(n - 1)].push(obj.clone());
    }
    per_batch.into_iter().map(|objects| FrameBatch::new(batch_secs, objects)).collect()
}

fn live_service(scene: &Scene) -> QueryService {
    let service = QueryService::new().with_parallelism(Parallelism::Fixed(1));
    service.register_live_camera("campus", scene.frame_rate, scene.frame_size, PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
    service.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    service
}

fn standing_text(batch_secs: f64) -> String {
    format!(
        "SPLIT campus BEGIN 0 END {batch_secs} BY TIME 5 sec STRIDE 0 sec INTO c;
         PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
         SELECT COUNT(*) FROM t CONSUMING 0.1;"
    )
}

/// Closed-window analyst queries over the ingested recording (three distinct
/// PROCESS identities, as in the PR-3 bench).
fn analyst_queries(n: usize, window_secs: f64) -> Vec<(u64, String)> {
    (0..n)
        .map(|q| {
            let begin = (q % 3) as f64 * window_secs;
            let end = begin + window_secs;
            let query = format!(
                "SPLIT campus BEGIN {begin} END {end} BY TIME 5 sec STRIDE 0 sec INTO c;
                 PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
                 SELECT COUNT(*) FROM t CONSUMING 0.1;"
            );
            (q as u64 + 1, query)
        })
        .collect()
}

fn run_concurrent(service: &QueryService, queries: &[(u64, String)], analysts: usize) {
    std::thread::scope(|scope| {
        for a in 0..analysts {
            let service = &service;
            let queries = &queries;
            scope.spawn(move || {
                for (seed, q) in queries.iter().skip(a).step_by(analysts) {
                    service.execute_text(*seed, q).expect("bench query admitted");
                }
            });
        }
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let (hours, batch_secs, n_queries, samples) = if smoke { (0.25, 150.0, 12, 3) } else { (0.5, 150.0, 24, 5) };
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(hours).with_arrival_scale(0.3)).generate();
    let batches = batches_of(&scene, batch_secs);
    let n_batches = batches.len();
    let footage_secs = n_batches as f64 * batch_secs;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("bench_pr4_streaming: {n_batches} batches of {batch_secs} s, {samples} samples per mode, {cores} core(s)");

    // ---- ingest: appends alone, then appends + one standing firing each ----
    let services: Vec<QueryService> = (0..2 * samples).map(|_| live_service(&scene)).collect();
    for svc in &services[samples..] {
        svc.register_standing_query("per_batch", 7, &standing_text(batch_secs)).expect("standing registered");
    }
    let append_only_ms = median_ms(samples, |s| {
        for b in batches.clone() {
            services[s].append_frames("campus", b).expect("append admitted");
        }
    });
    let append_standing_ms = median_ms(samples, |s| {
        for b in batches.clone() {
            services[samples + s].append_frames("campus", b).expect("append admitted");
        }
    });
    let firing_overhead_ms = (append_standing_ms - append_only_ms).max(0.0) / n_batches as f64;

    // ---- closed-window cache: cold pass vs warm pass on an ingested service ----
    let queries = analyst_queries(n_queries, batch_secs);
    let service = live_service(&scene);
    for b in batches.clone() {
        service.append_frames("campus", b).expect("append admitted");
    }
    let cold = {
        let start = Instant::now();
        run_concurrent(&service, &queries, 4);
        start.elapsed().as_secs_f64() * 1e3
    };
    let warm = median_ms(samples, |_| run_concurrent(&service, &queries, 4));
    let hit_rate = {
        let s = service.cache_stats();
        s.hits as f64 / (s.hits + s.misses).max(1) as f64
    };

    let json = format!(
        "{{\n  \"pr\": 4,\n  \"bench\": \"live ingestion & standing queries\",\n  \"available_cores\": {cores},\n  \
         \"config\": {{\"video\": \"campus\", \"hours\": {hours}, \"batch_secs\": {batch_secs}, \
         \"batches\": {n_batches}, \"queries\": {n_queries}, \"samples\": {samples}, \"smoke\": {smoke}}},\n  \
         \"ingest\": [\n    \
         {{\"mode\": \"append_only\", \"median_ms\": {append_only_ms:.3}, \"batches_per_sec\": {:.1}, \
         \"footage_secs_per_sec\": {:.0}}},\n    \
         {{\"mode\": \"append_with_standing\", \"median_ms\": {append_standing_ms:.3}, \"batches_per_sec\": {:.1}, \
         \"footage_secs_per_sec\": {:.0}}}\n  ],\n  \
         \"standing\": {{\"firings_per_ingest\": {n_batches}, \"latency_ms_per_firing\": {firing_overhead_ms:.3}}},\n  \
         \"cache\": [\n    \
         {{\"mode\": \"cold_pass\", \"median_ms\": {cold:.3}}},\n    \
         {{\"mode\": \"warm_pass\", \"median_ms\": {warm:.3}}}\n  ],\n  \
         \"closed_window_cache_hit_rate\": {hit_rate:.3},\n  \
         \"speedups\": {{\"warm_cache_vs_cold_pass\": {:.2}}}\n}}\n",
        n_batches as f64 / (append_only_ms / 1e3),
        footage_secs / (append_only_ms / 1e3),
        n_batches as f64 / (append_standing_ms / 1e3),
        footage_secs / (append_standing_ms / 1e3),
        cold / warm.max(1e-9),
    );

    if out_path == "/dev/null" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench snapshot");
        eprintln!("bench_pr4_streaming: wrote {out_path}");
        print!("{json}");
    }
}
