//! Regenerates the paper's fig6 chunk range sweep experiment. Pass `--full` for the
//! larger (slower) configuration.

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        privid_bench::Scale::full()
    } else {
        privid_bench::Scale::quick()
    };
    print!("{}", privid_bench::fig6_chunk_range_sweep(scale));
}
