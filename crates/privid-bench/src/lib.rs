//! # privid-bench
//!
//! The experiment harness for the Privid reproduction: one function per paper
//! table / figure, each regenerating the corresponding rows or series from
//! the synthetic substrate. The binaries in `src/bin/` are thin wrappers that
//! print one experiment each; `run_all_experiments` prints everything and is
//! what `EXPERIMENTS.md` records.
//!
//! Scale note: every experiment accepts a [`Scale`] so the same code can run
//! as a quick smoke test (`Scale::quick()`, the default for the binaries) or
//! closer to the paper's 12-hour / 365-day configurations
//! (`Scale::full()`). Accuracy numbers improve with scale (longer windows →
//! relatively less noise), exactly as the paper's Fig. 7 predicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use privid::core::masking::MaskingAnalysis;
use privid::core::region_output_ranges;
use privid::cv::{tune_tracker, DetectorConfig, TuningGrid};
use privid::video::{ChunkSpec, ObjectClass, PersistenceHistogram};
use privid::{
    greedy_mask_order, CarTableProcessor, ChunkProcessor, DatasetCatalog, DegradationCurve, DirectionFilterProcessor,
    DurationEstimator, GridSpec, Parallelism, PortoConfig, PortoDataset, PrivacyPolicy, PrividSystem,
    RedLightProcessor, Scene, SceneConfig, SceneGenerator, TaxiShiftProcessor, TimeSpan, TreeBloomProcessor,
    UniqueEntrantProcessor,
};

/// How large to make each experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Hours of footage per video (paper: 12).
    pub hours: f64,
    /// Fraction of the nominal arrival rate (paper: 1.0).
    pub arrival_scale: f64,
    /// Number of repeated noisy draws when reporting accuracy (paper: 1000).
    pub noise_trials: usize,
    /// Days of the Porto dataset (paper: 365).
    pub porto_days: u32,
    /// Cameras of the Porto dataset (paper: 105).
    pub porto_cameras: u32,
    /// Worker count for the chunk execution engine. Results are identical at
    /// every setting; only experiment wall-clock time changes.
    pub parallelism: Parallelism,
}

impl Scale {
    /// A configuration that runs every experiment in a couple of minutes.
    pub fn quick() -> Self {
        Scale {
            hours: 1.0,
            arrival_scale: 0.2,
            noise_trials: 50,
            porto_days: 14,
            porto_cameras: 10,
            parallelism: Parallelism::Auto,
        }
    }

    /// A configuration closer to the paper's (hours of footage, more trials).
    pub fn full() -> Self {
        Scale {
            hours: 6.0,
            arrival_scale: 0.5,
            noise_trials: 200,
            porto_days: 60,
            porto_cameras: 20,
            parallelism: Parallelism::Auto,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

fn scene_for(video: &str, scale: Scale) -> Scene {
    let cfg = match video {
        "campus" => SceneConfig::campus(),
        "highway" => SceneConfig::highway(),
        _ => SceneConfig::urban(),
    };
    SceneGenerator::new(cfg.with_duration_hours(scale.hours).with_arrival_scale(scale.arrival_scale)).generate()
}

/// Mean accuracy (in %) of repeated noisy draws around a reference value,
/// following the paper's definition (§8.1): 100 · (1 − |noisy − ref| / ref).
pub fn accuracy_pct(reference: f64, noisy: &[f64]) -> f64 {
    if reference.abs() < 1e-12 || noisy.is_empty() {
        return 100.0;
    }
    let mean_err: f64 = noisy.iter().map(|n| (n - reference).abs()).sum::<f64>() / noisy.len() as f64;
    (100.0 * (1.0 - mean_err / reference.abs())).max(0.0)
}

// -------------------------------------------------------------------------------------------------
// Table 1
// -------------------------------------------------------------------------------------------------

/// Table 1: ground-truth vs CV-estimated maximum duration and the detector
/// miss rate, per video, over a 10-minute segment.
pub fn table1_duration_estimation(scale: Scale) -> String {
    let mut out = String::from("Table 1: conservative duration estimation despite imperfect CV\n");
    out.push_str("video    | GT max (s) | CV estimate (s) | conservative | % boxes missed\n");
    // Use at least half the nominal arrival volume and a mid-recording segment
    // so the 10-minute annotation window actually contains traffic.
    let scale = Scale { arrival_scale: scale.arrival_scale.max(0.5), ..scale };
    for video in ["campus", "highway", "urban"] {
        let scene = scene_for(video, scale);
        let est = DurationEstimator::for_video(video).estimate(&scene, &TimeSpan::between_secs(1200.0, 1800.0));
        out.push_str(&format!(
            "{video:<8} | {:>10.0} | {:>15.0} | {:>12} | {:>5.1}%\n",
            est.ground_truth_max_secs,
            est.max_duration_secs,
            est.is_conservative(),
            est.miss_fraction * 100.0
        ));
    }
    out
}

// -------------------------------------------------------------------------------------------------
// Table 2
// -------------------------------------------------------------------------------------------------

/// Table 2: whole-frame vs per-region maximum per-chunk output.
pub fn table2_spatial_split(scale: Scale) -> String {
    let mut out = String::from("Table 2: output-range reduction from spatial splitting\n");
    out.push_str("video    | max(frame) | max(region) | reduction\n");
    for video in ["campus", "highway", "urban"] {
        let scene = scene_for(video, scale);
        let scheme = scene.region_schemes["default"].clone();
        let window = TimeSpan::from_secs((scale.hours * 3600.0).min(1800.0));
        let report = region_output_ranges(&scene, &window, &ChunkSpec::contiguous(5.0), &scheme);
        out.push_str(&format!(
            "{video:<8} | {:>10} | {:>11} | {:>8.2}x\n",
            report.max_per_chunk_frame, report.max_per_chunk_region, report.reduction_factor
        ));
    }
    out
}

// -------------------------------------------------------------------------------------------------
// Table 3 (query case studies) and Fig. 5
// -------------------------------------------------------------------------------------------------

struct CaseResult {
    label: String,
    reference: f64,
    accuracy: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_counting_case(
    video: &str,
    scale: Scale,
    seed: u64,
    processor: &'static str,
    chunk_secs: f64,
    window_secs: f64,
    max_rows: usize,
    rho: f64,
) -> CaseResult {
    let scene = scene_for(video, scale);
    let mut sys = PrividSystem::new(seed).with_parallelism(scale.parallelism);
    // The evaluation policies protect a single appearance (K = 1), matching the
    // paper's per-query parameterization with masked rho values (Table 3).
    sys.register_camera(video, scene, PrivacyPolicy::new(rho, 1, 1e9)).expect("registration on a non-durable system cannot fail");
    match processor {
        "people" => sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>),
        "cars" => sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::cars()) as Box<dyn ChunkProcessor>),
        "trees" => sys.register_processor("proc", || Box::new(TreeBloomProcessor) as Box<dyn ChunkProcessor>),
        "redlight" => sys.register_processor("proc", || Box::new(RedLightProcessor) as Box<dyn ChunkProcessor>),
        "north" => sys.register_processor("proc", || Box::new(DirectionFilterProcessor::default()) as Box<dyn ChunkProcessor>),
        _ => sys.register_processor("proc", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>),
    }
    .expect("registration on a non-durable system cannot fail");
    let (select, schema) = match processor {
        "trees" => ("SELECT AVG(range(bloomed, 0, 100)) FROM t CONSUMING 1.0;", "(bloomed:NUMBER=0)"),
        "redlight" => ("SELECT AVG(range(red_secs, 0, 300)) FROM t CONSUMING 1.0;", "(red_secs:NUMBER=0)"),
        _ => ("SELECT COUNT(*) FROM t CONSUMING 1.0;", "(count:NUMBER=0)"),
    };
    let query = format!(
        "SPLIT {video} BEGIN 0 END {window_secs} BY TIME {chunk_secs} sec STRIDE 0 sec INTO c;
         PROCESS c USING proc TIMEOUT 1 sec PRODUCING {max_rows} ROWS WITH SCHEMA {schema} INTO t;
         {select}"
    );
    // Reference: the raw (un-noised) value; repeated noisy trials give accuracy.
    let first = sys.execute_text(&query).expect("case query");
    let reference = first.releases[0].raw.as_number().unwrap();
    let mut noisy = Vec::with_capacity(scale.noise_trials);
    noisy.push(first.releases[0].value.as_number().unwrap());
    for trial in 1..scale.noise_trials {
        let mut fresh = PrividSystem::new(seed + trial as u64).with_parallelism(scale.parallelism);
        fresh.register_camera(video, scene_for(video, scale), PrivacyPolicy::new(rho, 1, 1e9)).expect("registration on a non-durable system cannot fail");
        match processor {
            "people" => fresh.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>),
            "cars" => fresh.register_processor("proc", || Box::new(UniqueEntrantProcessor::cars()) as Box<dyn ChunkProcessor>),
            "trees" => fresh.register_processor("proc", || Box::new(TreeBloomProcessor) as Box<dyn ChunkProcessor>),
            "redlight" => fresh.register_processor("proc", || Box::new(RedLightProcessor) as Box<dyn ChunkProcessor>),
            "north" => fresh.register_processor("proc", || Box::new(DirectionFilterProcessor::default()) as Box<dyn ChunkProcessor>),
            _ => fresh.register_processor("proc", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>),
        }
        .expect("registration on a non-durable system cannot fail");
        // Re-use the raw value; only re-sample the noise via the mechanism by
        // re-running the aggregation (cheap relative to re-chunking would be
        // ideal, but correctness first: run the whole query again).
        if trial < 5 {
            let r = fresh.execute_text(&query).expect("case query");
            noisy.push(r.releases[0].value.as_number().unwrap());
        } else {
            // For the remaining trials, synthesise draws from the same Laplace
            // scale (statistically identical and far cheaper).
            let scale_b = first.releases[0].noise_scale;
            let mut mech = privid::LaplaceMechanism::new(seed + 1000 + trial as u64);
            noisy.push(reference + mech.sample(scale_b));
        }
    }
    CaseResult {
        label: format!("{video:>8} {processor:<9}"),
        reference,
        accuracy: accuracy_pct(reference, &noisy),
    }
}

/// Table 3 (Q1–Q3, Q7–Q13 analogues): per-query accuracy vs the non-private
/// reference, on the synthetic scenes.
pub fn table3_query_case_studies(scale: Scale) -> String {
    // Counting queries are evaluated at the nominal arrival volume (the paper's
    // accuracies rely on counts being large relative to the noise scale), over
    // a window of up to 4 hours at the quick scale.
    let scale = Scale { arrival_scale: scale.arrival_scale.max(1.0), ..scale };
    let window = (scale.hours.max(2.0) * 3600.0).min(14_400.0);
    let mut out = String::from("Table 3: query case studies (accuracy vs non-private reference)\n");
    out.push_str("case                | query                  | reference | accuracy\n");
    let cases = vec![
        ("Q1  count people (campus)", run_counting_case("campus", scale, 10, "people", 5.0, window, 4, 50.0)),
        ("Q2  count cars (highway)", run_counting_case("highway", scale, 11, "cars", 5.0, window, 8, 60.0)),
        ("Q3  count people (urban)", run_counting_case("urban", scale, 12, "people", 5.0, window, 6, 50.0)),
        ("Q7  trees bloomed (campus)", run_counting_case("campus", scale, 13, "trees", 1.0, window, 20, 50.0)),
        ("Q9  trees bloomed (urban)", run_counting_case("urban", scale, 14, "trees", 1.0, window, 10, 50.0)),
        ("Q10 red light (campus)", run_counting_case("campus", scale, 15, "redlight", 600.0, window, 1, 0.0)),
        ("Q12 red light (urban)", run_counting_case("urban", scale, 16, "redlight", 600.0, window, 1, 0.0)),
        ("Q13 northbound people (campus)", run_counting_case("campus", scale, 17, "north", 120.0, window, 10, 50.0)),
    ];
    for (name, case) in cases {
        out.push_str(&format!(
            "{name:<32} | {:<12} | {:>9.1} | {:>7.2}%\n",
            case.label, case.reference, case.accuracy
        ));
    }
    out.push_str(&porto_cases(scale));
    out
}

/// The Porto multi-camera cases (Q4–Q6 analogues).
fn porto_cases(scale: Scale) -> String {
    let config = PortoConfig {
        num_taxis: 120,
        num_cameras: scale.porto_cameras,
        days: scale.porto_days,
        ..PortoConfig::default()
    };
    let dataset = PortoDataset::generate(config.clone());
    let mut sys = PrividSystem::new(77).with_parallelism(scale.parallelism);
    for cam in 0..2u32 {
        let scene = dataset.camera_scene(cam);
        let rho = dataset.max_visit_duration(cam) * 1.2;
        sys.register_camera(format!("porto{cam}"), scene, PrivacyPolicy::new(rho.max(15.0), 4, 1e9)).expect("camera/processor registration must succeed");
    }
    sys.register_processor("taxi", || Box::new(TaxiShiftProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
    let days = config.days;
    let q5 = format!(
        r#"SPLIT porto0 BEGIN 0 END {days} days BY TIME 60 sec STRIDE 0 sec INTO c0;
           SPLIT porto1 BEGIN 0 END {days} days BY TIME 60 sec STRIDE 0 sec INTO c1;
           PROCESS c0 USING taxi TIMEOUT 1 sec PRODUCING 30 ROWS
               WITH SCHEMA (taxi:STRING="", day:NUMBER=0, hour:NUMBER=0, camera:STRING="") INTO t0;
           PROCESS c1 USING taxi TIMEOUT 1 sec PRODUCING 30 ROWS
               WITH SCHEMA (taxi:STRING="", day:NUMBER=0, hour:NUMBER=0, camera:STRING="") INTO t1;
           SELECT COUNT(*) FROM (SELECT taxi, day FROM t0 JOIN t1 ON taxi, day GROUP BY taxi, day) CONSUMING 1.0;"#
    );
    let result = sys.execute_text(&q5).expect("porto Q5");
    let raw = result.releases[0].raw.as_number().unwrap();
    let scale_b = result.releases[0].noise_scale;
    let mut mech = privid::LaplaceMechanism::new(991);
    let noisy: Vec<f64> = (0..scale.noise_trials).map(|_| raw + mech.sample(scale_b)).collect();
    format!(
        "Q5  taxis at both cameras (porto)  | {:>12} | {:>9.1} | {:>7.2}%\nQ6  busiest camera (porto)         | argmax       | porto{}   | (noisy-max winner: {:?})\n",
        "join+count",
        raw,
        accuracy_pct(raw, &noisy),
        dataset.busiest_camera(),
        {
            let mut sys2 = PrividSystem::new(78);
            for cam in 0..4u32.min(config.num_cameras) {
                let scene = dataset.camera_scene(cam);
                sys2.register_camera(format!("porto{cam}"), scene, PrivacyPolicy::new(60.0, 4, 1e9)).expect("camera/processor registration must succeed");
            }
            sys2.register_processor("taxi", || Box::new(TaxiShiftProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
            let mut splits = String::new();
            for cam in 0..4u32.min(config.num_cameras) {
                splits.push_str(&format!(
                    "SPLIT porto{cam} BEGIN 0 END {days} days BY TIME 60 sec STRIDE 0 sec INTO cc{cam};
                     PROCESS cc{cam} USING taxi TIMEOUT 1 sec PRODUCING 30 ROWS
                         WITH SCHEMA (taxi:STRING=\"\", day:NUMBER=0, hour:NUMBER=0, camera:STRING=\"\") INTO tt{cam};\n"
                ));
            }
            let q6 = format!(
                "{splits}SELECT ARGMAX(camera) FROM tt0 UNION tt1 ON camera UNION tt2 ON camera UNION tt3 ON camera CONSUMING 1.0;"
            );
            sys2.execute_text(&q6).expect("porto Q6").releases[0].value.clone()
        }
    )
}

// -------------------------------------------------------------------------------------------------
// Tables 4/5, Table 6, Fig. 4, Fig. 11
// -------------------------------------------------------------------------------------------------

/// Tables 4 and 5: tracker hyper-parameter tuning grids per video.
pub fn table45_tracker_tuning(scale: Scale) -> String {
    let mut out = String::from("Tables 4/5: tracker hyper-parameter tuning (best configurations first)\n");
    let grid = TuningGrid::default();
    for video in ["campus", "highway", "urban"] {
        let scene =
            scene_for(video, Scale { hours: scale.hours.min(0.5), arrival_scale: scale.arrival_scale.max(0.5), ..scale });
        let detector = match video {
            "campus" => DetectorConfig::campus(),
            "highway" => DetectorConfig::highway(),
            _ => DetectorConfig::urban(),
        };
        let results = tune_tracker(&scene, &TimeSpan::between_secs(600.0, 1200.0), &detector, &grid);
        out.push_str(&format!("{video}: grid of {} configurations\n", results.len()));
        for r in results.iter().take(3) {
            out.push_str(&format!(
                "  iou={:.1} max_age={:<4} min_hits={} -> estimate {:>7.0} s (gt {:>6.0} s) conservative={} score={:.3}\n",
                r.config.iou_threshold,
                r.config.max_age,
                r.config.min_hits,
                r.estimated_max_secs,
                r.ground_truth_max_secs,
                r.conservative,
                r.score
            ));
        }
    }
    out
}

/// Table 6: masking effectiveness across the ten-video catalog.
pub fn table6_masking_effectiveness(scale: Scale) -> String {
    let mut out = String::from("Table 6: masking effectiveness on the extended catalog\n");
    out.push_str("video              | % grid masked | reduction | identities retained | paper reduction\n");
    let catalog = DatasetCatalog::table6();
    for entry in catalog.entries() {
        let scene = catalog
            .generate_scaled(&entry.name, scale.hours.min(1.0), scale.arrival_scale.min(0.15))
            .expect("catalog entry");
        let grid = GridSpec::coarse(scene.frame_size);
        let plan = greedy_mask_order(&scene, grid, 120);
        let prefix = plan
            .prefix_for_reduction(entry.paper_reduction.min(4.0))
            .unwrap_or(plan.steps.len().max(1))
            .max(1);
        let mask = plan.mask_prefix(prefix);
        let analysis = MaskingAnalysis::analyse(&scene, &mask);
        out.push_str(&format!(
            "{:<18} | {:>12.1}% | {:>8.2}x | {:>18.1}% | {:>10.2}x\n",
            entry.name,
            analysis.masked_fraction * 100.0,
            analysis.reduction_factor,
            analysis.identities_retained * 100.0,
            entry.paper_reduction
        ));
    }
    out
}

/// Fig. 4: persistence histograms (log-second bins) before and after masking.
pub fn fig4_persistence_distributions(scale: Scale) -> String {
    let mut out = String::from("Fig. 4: persistence distributions before/after masking (relative frequency per ln-second bin)\n");
    for video in ["campus", "highway", "urban"] {
        let scene = scene_for(video, scale);
        let grid = GridSpec::coarse(scene.frame_size);
        let plan = greedy_mask_order(&scene, grid, 80);
        let prefix = plan.prefix_for_reduction(3.0).unwrap_or(plan.steps.len().max(1)).max(1);
        let mask = plan.mask_prefix(prefix);
        let before = PersistenceHistogram::compute(&scene, None);
        let after = PersistenceHistogram::compute(&scene, Some(&mask));
        let analysis = MaskingAnalysis::analyse(&scene, &mask);
        out.push_str(&format!(
            "{video}: original ({} runs, max bin e^{}), masked ({} runs, max bin e^{}), max-persistence reduction {:.2}x\n",
            before.total,
            before.max_bin(),
            after.total,
            after.max_bin(),
            analysis.reduction_factor
        ));
        out.push_str(&format!("  original: {:?}\n", before.relative().iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()));
        out.push_str(&format!("  masked  : {:?}\n", after.relative().iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()));
    }
    out
}

/// Fig. 11: cumulative effect of the greedy mask ordering on max persistence
/// and identities retained.
pub fn fig11_cumulative_masking(scale: Scale) -> String {
    let mut out =
        String::from("Fig. 11: cumulative masking (fraction of cells masked -> persistence & identities)\n");
    let catalog = DatasetCatalog::table6();
    for entry in catalog.entries().iter().take(5) {
        let scene = catalog
            .generate_scaled(&entry.name, scale.hours.min(0.5), scale.arrival_scale.min(0.15))
            .expect("catalog entry");
        let grid = GridSpec::coarse(scene.frame_size);
        let plan = greedy_mask_order(&scene, grid, 100);
        out.push_str(&format!("{} (original max {:.0} s):\n", entry.name, plan.original_max_persistence));
        for frac in [0.1, 0.25, 0.5, 1.0] {
            let idx = ((plan.steps.len() as f64 * frac).ceil() as usize).clamp(1, plan.steps.len());
            let step = &plan.steps[idx - 1];
            out.push_str(&format!(
                "  {:>5.1}% of plan ({:>3} cells, {:>5.2}% of grid): max persistence {:>8.0} s, identities {:>5.1}%\n",
                frac * 100.0,
                idx,
                idx as f64 / grid.cell_count() as f64 * 100.0,
                step.max_persistence_after,
                step.identities_retained * 100.0
            ));
        }
    }
    out
}

// -------------------------------------------------------------------------------------------------
// Fig. 5, 6, 7, 8
// -------------------------------------------------------------------------------------------------

/// Fig. 5: hourly counting time series (original vs Privid-no-noise vs the
/// 99% noise band) for the Q1-style query on each video.
pub fn fig5_case1_timeseries(scale: Scale) -> String {
    let hours = scale.hours.clamp(2.0, 6.0) as usize;
    let mut out = String::from("Fig. 5: hourly unique-object counts (raw chunked count ± 99% noise band)\n");
    for (video, processor) in [("campus", "people"), ("highway", "cars"), ("urban", "people")] {
        let scene = SceneGenerator::new(match video {
            "campus" => SceneConfig::campus(),
            "highway" => SceneConfig::highway(),
            _ => SceneConfig::urban(),
        }
        .with_duration_hours(hours as f64)
        .with_arrival_scale(scale.arrival_scale))
        .generate();
        let mut sys = PrividSystem::new(31).with_parallelism(scale.parallelism);
        sys.register_camera(video, scene, PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
        if processor == "people" {
            sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        } else {
            sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::cars()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        }
        let query = format!(
            "SPLIT {video} BEGIN 0 END {} BY TIME 5 sec STRIDE 0 sec INTO c;
             PROCESS c USING proc TIMEOUT 1 sec PRODUCING 60 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
             SELECT COUNT(*) FROM t GROUP BY chunk BIN 1 hr CONSUMING {};",
            hours * 3600,
            hours as f64
        );
        let result = sys.execute_text(&query).expect("fig5 query");
        out.push_str(&format!("{video}:\n"));
        for r in &result.releases {
            let raw = r.raw.as_number().unwrap();
            // 99% band of Laplace(b): ±b·ln(100) ≈ ±4.6 b.
            let band = 4.605 * r.noise_scale;
            out.push_str(&format!(
                "  hour starting {:>6}s: raw {:>7.0}  privid {:>8.1}  band ±{:>7.1}\n",
                r.group_key.as_deref().unwrap_or("?"),
                raw,
                r.value.as_number().unwrap(),
                band
            ));
        }
    }
    out
}

/// Fig. 6: RMSE of the Q1-style count as a function of chunk size and the
/// per-chunk output cap (`max_rows`, which sets the output range).
pub fn fig6_chunk_range_sweep(scale: Scale) -> String {
    let mut out = String::from("Fig. 6: error vs chunk size and per-chunk output cap (campus, Q1-style)\n");
    out.push_str("chunk (s) | max rows | raw count | reference | noise scale | RMSE\n");
    let window = (scale.hours * 3600.0).min(3600.0);
    let scene = scene_for("campus", scale);
    // Reference: ground-truth number of appearance starts in the window.
    let reference: f64 = scene
        .objects
        .iter()
        .filter(|o| o.class == ObjectClass::Person)
        .flat_map(|o| o.segments.iter())
        .filter(|s| s.span.start.as_secs() > 0.0 && s.span.start.as_secs() < window)
        .count() as f64;
    for chunk in [1.0, 5.0, 10.0, 30.0, 60.0] {
        for max_rows in [10usize, 40, 160] {
            let mut sys = PrividSystem::new(41).with_parallelism(scale.parallelism);
            sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
            sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
            let query = format!(
                "SPLIT campus BEGIN 0 END {window} BY TIME {chunk} sec STRIDE 0 sec INTO c;
                 PROCESS c USING proc TIMEOUT 1 sec PRODUCING {max_rows} ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
                 SELECT COUNT(*) FROM t CONSUMING 1.0;"
            );
            let result = sys.execute_text(&query).expect("fig6 query");
            let r = &result.releases[0];
            let raw = r.raw.as_number().unwrap();
            // RMSE over noise draws: sqrt(bias^2 + 2b^2) for Laplace noise.
            let rmse = ((raw - reference).powi(2) + 2.0 * r.noise_scale.powi(2)).sqrt();
            out.push_str(&format!(
                "{chunk:>9} | {max_rows:>8} | {raw:>9.0} | {reference:>9.0} | {:>11.1} | {rmse:>9.1}\n",
                r.noise_scale
            ));
        }
    }
    out
}

/// Fig. 7: noise added vs query window size (fixed chunk size and output cap).
pub fn fig7_window_sweep(scale: Scale) -> String {
    let mut out = String::from("Fig. 7: relative noise vs query window size (campus, Q1-style)\n");
    out.push_str("window (h) | raw count | noise scale | noise / count\n");
    let max_hours = scale.hours.clamp(2.0, 8.0);
    let scene = SceneGenerator::new(
        SceneConfig::campus().with_duration_hours(max_hours).with_arrival_scale(scale.arrival_scale),
    )
    .generate();
    let mut hours = 1.0;
    while hours <= max_hours + 1e-9 {
        let mut sys = PrividSystem::new(51).with_parallelism(scale.parallelism);
        sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
        sys.register_processor("proc", || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");
        let query = format!(
            "SPLIT campus BEGIN 0 END {} BY TIME 5 sec STRIDE 0 sec INTO c;
             PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
             SELECT COUNT(*) FROM t CONSUMING 1.0;",
            hours * 3600.0
        );
        let result = sys.execute_text(&query).expect("fig7 query");
        let r = &result.releases[0];
        let raw = r.raw.as_number().unwrap().max(1.0);
        out.push_str(&format!(
            "{hours:>10.1} | {raw:>9.0} | {:>11.1} | {:>12.3}\n",
            r.noise_scale,
            r.noise_scale / raw
        ));
        hours += 1.0;
    }
    out.push_str("(the absolute noise scale is constant, so relative error falls as the window grows)\n");
    out
}

/// Fig. 8: the privacy-degradation curves of Appendix C.
pub fn fig8_privacy_degradation(_scale: Scale) -> String {
    let mut out = String::from("Fig. 8: max detection probability vs persistence/rho (epsilon = 1)\n");
    out.push_str("ratio ");
    let curves = DegradationCurve::figure8(1.0);
    for c in &curves {
        out.push_str(&format!("| alpha={:<6} ", c.alpha));
    }
    out.push('\n');
    for i in (0..curves[0].points.len()).step_by(4) {
        out.push_str(&format!("{:>5.1} ", curves[0].points[i].persistence_ratio));
        for c in &curves {
            out.push_str(&format!("| {:<12.4}", c.points[i].detection_probability));
        }
        out.push('\n');
    }
    out
}

/// Run every experiment at the given scale, concatenating the reports.
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    for (name, report) in [
        ("table1", table1_duration_estimation(scale)),
        ("table2", table2_spatial_split(scale)),
        ("table3", table3_query_case_studies(scale)),
        ("table45", table45_tracker_tuning(scale)),
        ("table6", table6_masking_effectiveness(scale)),
        ("fig4", fig4_persistence_distributions(scale)),
        ("fig5", fig5_case1_timeseries(scale)),
        ("fig6", fig6_chunk_range_sweep(scale)),
        ("fig7", fig7_window_sweep(scale)),
        ("fig8", fig8_privacy_degradation(scale)),
        ("fig11", fig11_cumulative_masking(scale)),
    ] {
        out.push_str(&format!("==================== {name} ====================\n{report}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            hours: 0.25,
            arrival_scale: 0.1,
            noise_trials: 5,
            porto_days: 5,
            porto_cameras: 5,
            parallelism: Parallelism::Serial,
        }
    }

    #[test]
    fn accuracy_metric_behaves() {
        assert_eq!(accuracy_pct(100.0, &[100.0, 100.0]), 100.0);
        assert!((accuracy_pct(100.0, &[90.0, 110.0]) - 90.0).abs() < 1e-9);
        assert_eq!(accuracy_pct(0.0, &[5.0]), 100.0, "zero reference degenerates to 100%");
        assert_eq!(accuracy_pct(10.0, &[1000.0]), 0.0, "accuracy is clamped at zero");
    }

    #[test]
    fn table1_reports_three_conservative_rows() {
        let report = table1_duration_estimation(tiny());
        assert_eq!(report.matches("true").count(), 3, "all three estimates conservative:\n{report}");
    }

    #[test]
    fn table2_reports_reductions_of_at_least_one() {
        let report = table2_spatial_split(tiny());
        assert!(report.contains("campus"));
        assert!(!report.contains("| 0."), "no sub-1 reduction factors:\n{report}");
    }

    #[test]
    fn fig8_is_cheap_and_complete() {
        let report = fig8_privacy_degradation(tiny());
        assert!(report.contains("alpha=0.2"));
        assert!(report.lines().count() > 8);
    }

    #[test]
    fn fig7_noise_ratio_falls_with_window() {
        let report = fig7_window_sweep(Scale { hours: 2.0, ..tiny() });
        let ratios: Vec<f64> = report
            .lines()
            .filter(|l| l.contains('|') && !l.contains("window"))
            .filter_map(|l| l.split('|').nth(3).and_then(|s| s.trim().parse::<f64>().ok()))
            .collect();
        assert!(ratios.len() >= 2);
        assert!(ratios.last().unwrap() < ratios.first().unwrap(), "relative noise must fall: {ratios:?}");
    }
}
