//! Criterion benchmark of the end-to-end split → process → aggregate → noise
//! pipeline (the per-query cost an analyst experiences), plus a comparison of
//! the chunk execution engine's worker counts against the pre-engine eager
//! baseline (see `bench_snapshot` for the machine-readable form).

use criterion::{criterion_group, criterion_main, Criterion};
use privid::sandbox::{run_chunks, SandboxSpec};
use privid::video::{split_scene, ChunkSpec, TimeSpan};
use privid::{
    ChunkProcessor, Parallelism, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator, UniqueEntrantProcessor,
};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5).with_arrival_scale(0.3)).generate();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (name, chunk_secs) in [("chunk_5s", 5.0), ("chunk_30s", 30.0)] {
        group.bench_function(format!("count_query_10min_{name}"), |b| {
            b.iter(|| {
                let mut sys = PrividSystem::new(1);
                sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
                sys.register_processor("proc", || {
                    Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
                }).expect("camera/processor registration must succeed");
                let query = format!(
                    "SPLIT campus BEGIN 0 END 600 BY TIME {chunk_secs} sec STRIDE 0 sec INTO c;
                     PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
                     SELECT COUNT(*) FROM t CONSUMING 1.0;"
                );
                black_box(sys.execute_text(&query).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_execution_engine(c: &mut Criterion) {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5).with_arrival_scale(0.3)).generate();
    let query = "SPLIT campus BEGIN 0 END 1200 BY TIME 5 sec STRIDE 0 sec INTO c;
                 PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
                 SELECT COUNT(*) FROM t CONSUMING 1.0;";

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    // The pre-engine hot path: eager owned chunks, serial sandbox loop.
    group.bench_function("eager_split_and_run_240_chunks", |b| {
        let factory = || Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>;
        let sandbox = SandboxSpec::new(1.0, 20, privid::query::Schema::new(vec![
            privid::query::ColumnDef::number("count", 0.0),
        ]).unwrap());
        b.iter(|| {
            let chunks = split_scene(&scene, &TimeSpan::from_secs(1200.0), &ChunkSpec::contiguous(5.0), None);
            black_box(run_chunks(&factory, &chunks, &sandbox, false))
        });
    });

    for (name, parallelism) in [
        ("streaming_serial", Parallelism::Serial),
        ("streaming_workers_4", Parallelism::Fixed(4)),
        ("streaming_auto", Parallelism::Auto),
    ] {
        group.bench_function(format!("count_query_20min_{name}"), |b| {
            let mut sys = PrividSystem::new(1).with_parallelism(parallelism);
            sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9)).expect("camera/processor registration must succeed");
            sys.register_processor("proc", || {
                Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
            }).expect("camera/processor registration must succeed");
            b.iter(|| black_box(sys.execute_text(query).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_execution_engine);
criterion_main!(benches);
