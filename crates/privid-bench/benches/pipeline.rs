//! Criterion benchmark of the end-to-end split → process → aggregate → noise
//! pipeline (the per-query cost an analyst experiences).

use criterion::{criterion_group, criterion_main, Criterion};
use privid::{ChunkProcessor, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator, UniqueEntrantProcessor};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5).with_arrival_scale(0.3)).generate();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (name, chunk_secs) in [("chunk_5s", 5.0), ("chunk_30s", 30.0)] {
        group.bench_function(format!("count_query_10min_{name}"), |b| {
            b.iter(|| {
                let mut sys = PrividSystem::new(1);
                sys.register_camera("campus", scene.clone(), PrivacyPolicy::new(90.0, 2, 1e9));
                sys.register_processor("proc", || {
                    Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
                });
                let query = format!(
                    "SPLIT campus BEGIN 0 END 600 BY TIME {chunk_secs} sec STRIDE 0 sec INTO c;
                     PROCESS c USING proc TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO t;
                     SELECT COUNT(*) FROM t CONSUMING 1.0;"
                );
                black_box(sys.execute_text(&query).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
