//! Criterion benchmarks of the CV substrate: detection + tracking over a
//! segment, the workload of the video owner's (ρ, K) estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use privid::video::TimeSpan;
use privid::{DurationEstimator, SceneConfig, SceneGenerator};
use std::hint::black_box;

fn bench_tracking(c: &mut Criterion) {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25).with_arrival_scale(0.3)).generate();
    let mut group = c.benchmark_group("tracking");
    group.sample_size(10);
    group.bench_function("duration_estimation_5min_campus", |b| {
        let estimator = DurationEstimator::for_video("campus");
        b.iter(|| black_box(estimator.estimate(black_box(&scene), &TimeSpan::between_secs(0.0, 300.0))));
    });
    group.finish();
}

criterion_group!(benches, bench_tracking);
criterion_main!(benches);
