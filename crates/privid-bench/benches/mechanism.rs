//! Criterion micro-benchmarks for the Laplace mechanism and report-noisy-max.

use criterion::{criterion_group, criterion_main, Criterion};
use privid::LaplaceMechanism;
use std::hint::black_box;

fn bench_mechanism(c: &mut Criterion) {
    c.bench_function("laplace_release", |b| {
        let mut mech = LaplaceMechanism::new(1);
        b.iter(|| black_box(mech.release(black_box(1234.0), 140.0, 1.0)));
    });

    c.bench_function("report_noisy_max_105_cameras", |b| {
        let mut mech = LaplaceMechanism::new(2);
        let candidates: Vec<(String, f64)> = (0..105).map(|i| (format!("porto{i}"), (i * 37 % 997) as f64)).collect();
        b.iter(|| black_box(mech.release_argmax(black_box(&candidates), 30.0, 1.0)));
    });
}

criterion_group!(benches, bench_mechanism);
criterion_main!(benches);
