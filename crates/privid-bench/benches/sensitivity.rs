//! Criterion micro-benchmarks for query parsing and sensitivity propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use privid::query::{SensitivityContext, TableProfile};
use privid::{parse_query, Aggregation, Relation, SelectStatement, Value};
use std::hint::black_box;

fn bench_sensitivity(c: &mut Criterion) {
    let mut ctx = SensitivityContext::new();
    for name in ["t0", "t1", "t2", "t3"] {
        ctx.register(
            name,
            TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 535_680 },
        );
    }

    c.bench_function("sensitivity_grouped_count", |b| {
        let stmt = SelectStatement::simple(Aggregation::count("plate"), Relation::table("t0").distinct_on(vec!["plate"]))
            .group_by_keys("color", vec![Value::str("RED"), Value::str("WHITE"), Value::str("SILVER")]);
        b.iter(|| black_box(ctx.statement_sensitivities(black_box(&stmt), 1).unwrap()));
    });

    c.bench_function("sensitivity_three_way_join_avg", |b| {
        let joined = Relation::table("t0")
            .join(Relation::table("t1"), vec!["plate"], privid::query::ast::JoinKind::Inner)
            .join(Relation::table("t2"), vec!["plate"], privid::query::ast::JoinKind::Outer)
            .limit(10_000);
        let stmt = SelectStatement::simple(Aggregation::avg("speed", 30.0, 60.0), joined);
        b.iter(|| black_box(ctx.statement_sensitivities(black_box(&stmt), 1).unwrap()));
    });

    c.bench_function("parse_listing1", |b| {
        let text = r#"
            SPLIT camA BEGIN 0 END 744 hr BY TIME 5 sec STRIDE 0 sec INTO chunksA;
            PROCESS chunksA USING model.py TIMEOUT 1 sec PRODUCING 10 ROWS
                WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0) INTO tableA;
            SELECT AVG(range(speed, 30, 60)) FROM tableA;
            SELECT color, COUNT(plate) FROM (SELECT plate, color FROM tableA GROUP BY plate)
                GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"];"#;
        b.iter(|| black_box(parse_query(black_box(text)).unwrap()));
    });
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
