//! Tracker hyper-parameter tuning (Appendix A, Tables 4 and 5).
//!
//! The paper grid-searches DeepSORT / SORT hyper-parameters per video,
//! choosing the configuration whose *distribution of track durations* best
//! matches a manually annotated ground truth. We reproduce the procedure: a
//! grid over (iou, max_age, min_hits), scored by the absolute relative error
//! between the estimated and ground-truth maximum durations plus a penalty
//! for non-conservative estimates (underestimating the maximum would break
//! the privacy policy, so such configurations are heavily penalized).

use crate::detector::DetectorConfig;
use crate::duration::DurationEstimator;
use crate::tracker::TrackerConfig;
use privid_video::{Scene, TimeSpan};
use serde::{Deserialize, Serialize};

/// The hyper-parameter grid to search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningGrid {
    /// Candidate IoU thresholds.
    pub iou_thresholds: Vec<f64>,
    /// Candidate `max_age` values (frames).
    pub max_ages: Vec<u32>,
    /// Candidate `min_hits` values.
    pub min_hits: Vec<u32>,
}

impl Default for TuningGrid {
    fn default() -> Self {
        // A compact version of the paper's Table 4/5 grids.
        TuningGrid { iou_thresholds: vec![0.1, 0.3, 0.5], max_ages: vec![16, 48, 96, 240], min_hits: vec![2, 3, 5] }
    }
}

impl TuningGrid {
    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.iou_thresholds.len() * self.max_ages.len() * self.min_hits.len()
    }

    /// True if the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate every configuration in the grid.
    pub fn configs(&self) -> Vec<TrackerConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &iou in &self.iou_thresholds {
            for &age in &self.max_ages {
                for &hits in &self.min_hits {
                    out.push(TrackerConfig {
                        iou_threshold: iou,
                        distance_threshold: TrackerConfig::default().distance_threshold,
                        max_age: age,
                        min_hits: hits,
                    });
                }
            }
        }
        out
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// The configuration evaluated.
    pub config: TrackerConfig,
    /// Estimated maximum duration (with margin) in seconds.
    pub estimated_max_secs: f64,
    /// Ground-truth maximum duration in seconds.
    pub ground_truth_max_secs: f64,
    /// Score: lower is better.
    pub score: f64,
    /// Whether the estimate conservatively bounds the ground truth.
    pub conservative: bool,
}

/// Evaluate the grid on a scene segment and return results sorted best-first.
pub fn tune_tracker(
    scene: &Scene,
    span: &TimeSpan,
    detector: &DetectorConfig,
    grid: &TuningGrid,
) -> Vec<TuningResult> {
    let mut results = Vec::with_capacity(grid.len());
    for config in grid.configs() {
        let estimator = DurationEstimator::new(detector.clone(), config);
        let est = estimator.estimate(scene, span);
        let gt = est.ground_truth_max_secs.max(1e-9);
        let rel_err = (est.max_duration_secs - gt).abs() / gt;
        let conservative = est.is_conservative();
        // Non-conservative estimates would under-protect individuals; penalize
        // them so they are never chosen when a conservative option exists.
        let score = if conservative { rel_err } else { 10.0 + rel_err };
        results.push(TuningResult {
            config,
            estimated_max_secs: est.max_duration_secs,
            ground_truth_max_secs: est.ground_truth_max_secs,
            score,
            conservative,
        });
    }
    results.sort_by(|a, b| a.score.partial_cmp(&b.score).unwrap());
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{SceneConfig, SceneGenerator};

    #[test]
    fn grid_enumeration_counts() {
        let grid = TuningGrid::default();
        assert_eq!(grid.configs().len(), grid.len());
        assert_eq!(grid.len(), 3 * 4 * 3);
        assert!(!grid.is_empty());
    }

    #[test]
    fn tuning_prefers_conservative_configs() {
        let scene = SceneGenerator::new(
            SceneConfig::campus().with_duration_hours(0.2).with_arrival_scale(0.4),
        )
        .generate();
        let span = TimeSpan::between_secs(0.0, 600.0);
        let grid = TuningGrid { iou_thresholds: vec![0.3], max_ages: vec![16, 96], min_hits: vec![2, 3] };
        let results = tune_tracker(&scene, &span, &DetectorConfig::campus(), &grid);
        assert_eq!(results.len(), 4);
        assert!(results.windows(2).all(|w| w[0].score <= w[1].score), "results sorted best-first");
        if results.iter().any(|r| r.conservative) {
            assert!(results[0].conservative, "a conservative config must win when one exists");
        }
    }

    #[test]
    fn best_config_estimate_is_reasonable() {
        let scene = SceneGenerator::new(
            SceneConfig::campus().with_duration_hours(0.2).with_arrival_scale(0.4),
        )
        .generate();
        let span = TimeSpan::between_secs(0.0, 600.0);
        let grid = TuningGrid { iou_thresholds: vec![0.3], max_ages: vec![48, 96], min_hits: vec![2] };
        let best = &tune_tracker(&scene, &span, &DetectorConfig::campus(), &grid)[0];
        assert!(best.estimated_max_secs > 0.0);
        assert!(best.estimated_max_secs < 20.0 * best.ground_truth_max_secs.max(1.0), "not absurdly loose");
    }
}
