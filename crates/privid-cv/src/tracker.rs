//! A SORT-style multi-object tracker.
//!
//! SORT (Simple Online and Realtime Tracking) associates per-frame detections
//! with existing tracks by IoU, predicts each track's next position with a
//! constant-velocity model, spawns tracks for unmatched detections, and
//! retires tracks that go unmatched for `max_age` frames. Tracks are only
//! *confirmed* (counted) after `min_hits` consecutive matches, which filters
//! out false positives. These are the same hyper-parameters the paper tunes
//! in Appendix A (Tables 4 and 5).

use crate::detector::Detection;
use privid_video::{BoundingBox, Point, Seconds, Timestamp};
use serde::{Deserialize, Serialize};

/// Tracker hyper-parameters (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Minimum IoU between a predicted track box and a detection to match.
    pub iou_threshold: f64,
    /// Maximum centre distance (pixels) for the fallback distance match.
    /// Needed because the synthetic scenes are sampled at ~1 fps, where fast
    /// objects move farther than their own box between frames.
    pub distance_threshold: f64,
    /// Number of frames a track survives without a matching detection.
    pub max_age: u32,
    /// Number of hits before a track is confirmed (counted in outputs).
    pub min_hits: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { iou_threshold: 0.3, distance_threshold: 150.0, max_age: 48, min_hits: 2 }
    }
}

impl TrackerConfig {
    /// The tuned DeepSORT configuration for the campus video (Table 4).
    pub fn campus() -> Self {
        TrackerConfig { iou_threshold: 0.3, distance_threshold: 150.0, max_age: 96, min_hits: 3 }
    }

    /// The tuned SORT configuration for the highway video (Table 5).
    pub fn highway() -> Self {
        TrackerConfig { iou_threshold: 0.3, distance_threshold: 250.0, max_age: 240, min_hits: 3 }
    }

    /// The tuned DeepSORT configuration for the urban video (Table 4).
    pub fn urban() -> Self {
        TrackerConfig { iou_threshold: 0.3, distance_threshold: 150.0, max_age: 96, min_hits: 2 }
    }
}

/// One track maintained by the tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// Stable track identifier (assigned in creation order).
    pub id: u64,
    /// Last matched bounding box.
    pub bbox: BoundingBox,
    /// Estimated per-frame velocity of the box centre (pixels/frame).
    pub velocity: Point,
    /// Timestamp of the first matched detection.
    pub first_seen: Timestamp,
    /// Timestamp of the most recent matched detection.
    pub last_seen: Timestamp,
    /// Number of matched detections.
    pub hits: u32,
    /// Frames elapsed since the last matched detection.
    pub frames_since_update: u32,
}

impl Track {
    /// Duration between the first and last matched detection, in seconds.
    pub fn duration(&self) -> Seconds {
        self.last_seen - self.first_seen
    }

    /// True once the track has accumulated `min_hits` matches.
    pub fn is_confirmed(&self, config: &TrackerConfig) -> bool {
        self.hits >= config.min_hits
    }

    /// The box the track predicts for the next frame (constant velocity).
    fn predicted_bbox(&self) -> BoundingBox {
        BoundingBox::new(self.bbox.x + self.velocity.x, self.bbox.y + self.velocity.y, self.bbox.w, self.bbox.h)
    }
}

/// The tracker: call [`Tracker::update`] once per frame with that frame's
/// detections, then [`Tracker::finish`] to flush live tracks.
#[derive(Debug, Clone)]
pub struct Tracker {
    config: TrackerConfig,
    active: Vec<Track>,
    finished: Vec<Track>,
    next_id: u64,
}

impl Tracker {
    /// Construct a tracker.
    pub fn new(config: TrackerConfig) -> Self {
        Tracker { config, active: Vec::new(), finished: Vec::new(), next_id: 0 }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Currently active (not yet retired) tracks.
    pub fn active_tracks(&self) -> &[Track] {
        &self.active
    }

    /// Process one frame of detections.
    pub fn update(&mut self, timestamp: Timestamp, detections: &[Detection]) {
        // Greedy association: evaluate every (track, detection) pair, sort by
        // IoU of the *predicted* track box, and match best-first.
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
        for (ti, track) in self.active.iter().enumerate() {
            let predicted = track.predicted_bbox();
            for (di, det) in detections.iter().enumerate() {
                let iou = predicted.iou(&det.bbox);
                let dist = predicted.center().distance(&det.bbox.center());
                if iou >= self.config.iou_threshold {
                    candidates.push((ti, di, 1.0 + iou));
                } else if dist <= self.config.distance_threshold {
                    // Distance fallback, strictly worse than any IoU match.
                    candidates.push((ti, di, 1.0 - dist / self.config.distance_threshold.max(1.0)));
                }
            }
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());

        let mut track_matched = vec![false; self.active.len()];
        let mut det_matched = vec![false; detections.len()];
        for (ti, di, _) in candidates {
            if track_matched[ti] || det_matched[di] {
                continue;
            }
            track_matched[ti] = true;
            det_matched[di] = true;
            let det = &detections[di];
            let track = &mut self.active[ti];
            let old_center = track.bbox.center();
            let new_center = det.bbox.center();
            track.velocity = Point::new(new_center.x - old_center.x, new_center.y - old_center.y);
            track.bbox = det.bbox;
            track.last_seen = timestamp;
            track.hits += 1;
            track.frames_since_update = 0;
        }

        // Unmatched tracks age; retire those past max_age.
        let max_age = self.config.max_age;
        let mut still_active = Vec::with_capacity(self.active.len());
        for (ti, mut track) in std::mem::take(&mut self.active).into_iter().enumerate() {
            if !track_matched[ti] {
                track.frames_since_update += 1;
            }
            if track.frames_since_update > max_age {
                self.finished.push(track);
            } else {
                still_active.push(track);
            }
        }
        self.active = still_active;

        // Unmatched detections start new tracks.
        for (di, det) in detections.iter().enumerate() {
            if det_matched[di] {
                continue;
            }
            self.active.push(Track {
                id: self.next_id,
                bbox: det.bbox,
                velocity: Point::new(0.0, 0.0),
                first_seen: timestamp,
                last_seen: timestamp,
                hits: 1,
                frames_since_update: 0,
            });
            self.next_id += 1;
        }
    }

    /// Flush all live tracks and return every track ever created, confirmed
    /// or not. Callers filter with [`Track::is_confirmed`].
    pub fn finish(mut self) -> Vec<Track> {
        self.finished.append(&mut self.active);
        self.finished.sort_by_key(|t| t.id);
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::ObjectClass;

    fn det(x: f64, y: f64, t: f64) -> Detection {
        Detection {
            bbox: BoundingBox::new(x, y, 20.0, 40.0),
            class: ObjectClass::Person,
            score: 0.9,
            timestamp: Timestamp::from_secs(t),
            source: None,
            source_class: None,
        }
    }

    #[test]
    fn single_object_yields_single_track() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        for i in 0..10 {
            tracker.update(Timestamp::from_secs(i as f64), &[det(10.0 + i as f64 * 5.0, 50.0, i as f64)]);
        }
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].hits, 10);
        assert!((tracks[0].duration() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn two_far_apart_objects_yield_two_tracks() {
        let mut tracker = Tracker::new(TrackerConfig::default());
        for i in 0..5 {
            tracker.update(
                Timestamp::from_secs(i as f64),
                &[det(10.0, 50.0, i as f64), det(1500.0, 800.0, i as f64)],
            );
        }
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 2);
        assert!(tracks.iter().all(|t| t.hits == 5));
    }

    #[test]
    fn track_survives_missed_frames_within_max_age() {
        let cfg = TrackerConfig { max_age: 5, ..Default::default() };
        let mut tracker = Tracker::new(cfg);
        tracker.update(Timestamp::from_secs(0.0), &[det(100.0, 100.0, 0.0)]);
        // three missed frames
        for i in 1..4 {
            tracker.update(Timestamp::from_secs(i as f64), &[]);
        }
        tracker.update(Timestamp::from_secs(4.0), &[det(100.0, 100.0, 4.0)]);
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 1, "object re-detected within max_age keeps its track");
        assert_eq!(tracks[0].hits, 2);
        assert!((tracks[0].duration() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn track_retired_after_max_age_and_new_track_started() {
        let cfg = TrackerConfig { max_age: 2, ..Default::default() };
        let mut tracker = Tracker::new(cfg);
        tracker.update(Timestamp::from_secs(0.0), &[det(100.0, 100.0, 0.0)]);
        for i in 1..=4 {
            tracker.update(Timestamp::from_secs(i as f64), &[]);
        }
        tracker.update(Timestamp::from_secs(5.0), &[det(100.0, 100.0, 5.0)]);
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 2, "gap longer than max_age splits the track");
    }

    #[test]
    fn constant_velocity_prediction_bridges_fast_motion() {
        // Object moves 100 px/frame — far more than its own width, so plain
        // IoU association would fail; velocity prediction must bridge it.
        let cfg = TrackerConfig { distance_threshold: 120.0, ..Default::default() };
        let mut tracker = Tracker::new(cfg);
        for i in 0..8 {
            tracker.update(Timestamp::from_secs(i as f64), &[det(10.0 + 100.0 * i as f64, 300.0, i as f64)]);
        }
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].hits, 8);
    }

    #[test]
    fn min_hits_confirmation() {
        let cfg = TrackerConfig { min_hits: 3, ..Default::default() };
        let mut tracker = Tracker::new(cfg);
        tracker.update(Timestamp::from_secs(0.0), &[det(10.0, 10.0, 0.0)]);
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 1);
        assert!(!tracks[0].is_confirmed(&cfg), "single-hit track is unconfirmed (false-positive filter)");
    }

    #[test]
    fn id_switch_chains_objects_into_one_longer_track() {
        // One object leaves exactly where another appears shortly after: with
        // a generous max_age the tracker chains them. This is the behaviour
        // that makes CV duration estimates conservative (Table 1).
        let cfg = TrackerConfig { max_age: 10, ..Default::default() };
        let mut tracker = Tracker::new(cfg);
        for i in 0..5 {
            tracker.update(Timestamp::from_secs(i as f64), &[det(500.0, 500.0, i as f64)]);
        }
        for i in 7..12 {
            tracker.update(Timestamp::from_secs(i as f64), &[det(505.0, 500.0, i as f64)]);
        }
        let tracks = tracker.finish();
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0].duration() >= 11.0 - 1e-9, "chained duration covers both objects");
    }
}
