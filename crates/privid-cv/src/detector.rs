//! A simulated object detector.
//!
//! Real detectors miss objects (especially small / distant / occluded ones),
//! localize boxes imperfectly, and occasionally hallucinate. The Privid paper
//! quantifies the first failure mode directly: its detector misses 29% / 5% /
//! 76% of ground-truth boxes on campus / highway / urban (Table 1, Fig. 2).
//! The simulated detector reproduces those failure modes as stochastic
//! corruption of the scene's ground-truth observations, seeded for
//! reproducibility.

use privid_video::{BoundingBox, ObjectClass, Observation, Scene, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One detector output: a box, a class label and a confidence score.
/// Detections carry no identity — identity is reconstructed by the tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected bounding box (jittered relative to ground truth).
    pub bbox: BoundingBox,
    /// Predicted class (may be wrong with probability `misclassify_rate`).
    pub class: ObjectClass,
    /// Confidence score in `(0, 1]`.
    pub score: f64,
    /// Frame timestamp the detection belongs to.
    pub timestamp: Timestamp,
    /// The ground-truth object that produced this detection, if any
    /// (false positives have `None`). Only used by evaluation code to compute
    /// miss rates; the tracker and Privid never look at it.
    pub source: Option<privid_video::ObjectId>,
    /// The ground-truth class of the source object (`None` for false
    /// positives). Unlike `class`, this is never corrupted by the simulated
    /// misclassification; evaluation code uses it to attribute detections.
    pub source_class: Option<ObjectClass>,
}

/// Configuration of the simulated detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Probability that a ground-truth box is missed entirely in a frame.
    pub miss_rate: f64,
    /// Expected number of spurious (false-positive) detections per frame.
    pub false_positives_per_frame: f64,
    /// Standard deviation of the localization error, as a fraction of the
    /// box's own dimensions.
    pub localization_jitter: f64,
    /// Probability of assigning the wrong class label.
    pub misclassify_rate: f64,
    /// Detection score floor; scores are sampled uniformly in `[floor, 1]`.
    pub score_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            miss_rate: 0.2,
            false_positives_per_frame: 0.05,
            localization_jitter: 0.05,
            misclassify_rate: 0.02,
            score_floor: 0.5,
            seed: 7,
        }
    }
}

impl DetectorConfig {
    /// Detector quality on the campus video (Table 1: 29% of boxes missed).
    pub fn campus() -> Self {
        DetectorConfig { miss_rate: 0.29, ..Default::default() }
    }

    /// Detector quality on the highway video (Table 1: 5% missed).
    pub fn highway() -> Self {
        DetectorConfig { miss_rate: 0.05, ..Default::default() }
    }

    /// Detector quality on the urban video (Table 1: 76% missed — Fig. 2).
    pub fn urban() -> Self {
        DetectorConfig { miss_rate: 0.76, ..Default::default() }
    }

    /// A perfect detector (useful as a baseline and in tests).
    pub fn perfect() -> Self {
        DetectorConfig {
            miss_rate: 0.0,
            false_positives_per_frame: 0.0,
            localization_jitter: 0.0,
            misclassify_rate: 0.0,
            score_floor: 0.99,
            seed: 0,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The simulated detector. Holds its own RNG so repeated frame evaluations
/// are independent draws but the whole sequence is reproducible.
#[derive(Debug, Clone)]
pub struct Detector {
    config: DetectorConfig,
    rng: StdRng,
}

impl Detector {
    /// Construct a detector from its configuration.
    pub fn new(config: DetectorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Detector { config, rng }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Run the detector on one frame's ground-truth observations.
    pub fn detect(&mut self, scene: &Scene, observations: &[Observation]) -> Vec<Detection> {
        let mut out = Vec::with_capacity(observations.len());
        for obs in observations {
            if self.rng.gen_bool(self.config.miss_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let jit = self.config.localization_jitter;
            let dx = self.normal() * jit * obs.bbox.w;
            let dy = self.normal() * jit * obs.bbox.h;
            let dw = 1.0 + self.normal() * jit;
            let dh = 1.0 + self.normal() * jit;
            let bbox = BoundingBox::new(obs.bbox.x + dx, obs.bbox.y + dy, obs.bbox.w * dw.max(0.2), obs.bbox.h * dh.max(0.2))
                .clamp_to(&scene.frame_size);
            let class = if self.rng.gen_bool(self.config.misclassify_rate.clamp(0.0, 1.0)) {
                // The commonest confusion in street scenes: person <-> bicycle,
                // anything else -> car.
                match obs.class {
                    ObjectClass::Person => ObjectClass::Bicycle,
                    _ => ObjectClass::Car,
                }
            } else {
                obs.class
            };
            out.push(Detection {
                bbox,
                class,
                score: self.rng.gen_range(self.config.score_floor..=1.0),
                timestamp: obs.timestamp,
                source: Some(obs.object_id),
                source_class: Some(obs.class),
            });
        }
        // False positives: spurious boxes at random positions.
        let fp_expected = self.config.false_positives_per_frame.max(0.0);
        let n_fp = if fp_expected == 0.0 {
            0
        } else {
            let whole = fp_expected.floor() as usize;
            whole + usize::from(self.rng.gen_bool((fp_expected - whole as f64).clamp(0.0, 1.0)))
        };
        let ts = observations.first().map(|o| o.timestamp).unwrap_or(Timestamp::ZERO);
        for _ in 0..n_fp {
            let w = self.rng.gen_range(10.0..80.0);
            let h = self.rng.gen_range(10.0..80.0);
            let x = self.rng.gen_range(0.0..scene.frame_size.width as f64 - w);
            let y = self.rng.gen_range(0.0..scene.frame_size.height as f64 - h);
            out.push(Detection {
                bbox: BoundingBox::new(x, y, w, h),
                class: if self.rng.gen_bool(0.5) { ObjectClass::Person } else { ObjectClass::Car },
                score: self.rng.gen_range(self.config.score_floor..=1.0),
                timestamp: ts,
                source: None,
                source_class: None,
            });
        }
        out
    }

    /// Run the detector over every frame of a time span, returning per-frame
    /// detections alongside the number of ground-truth boxes in each frame
    /// (needed to compute the miss fraction of Table 1).
    pub fn detect_span(
        &mut self,
        scene: &Scene,
        span: &privid_video::TimeSpan,
    ) -> (Vec<(Timestamp, Vec<Detection>)>, usize) {
        let dt = scene.frame_rate.frame_duration();
        let n = (span.duration() / dt).floor() as u64;
        let mut frames = Vec::with_capacity(n as usize);
        let mut gt_boxes = 0usize;
        for i in 0..n {
            let t = span.start.add_secs(i as f64 * dt);
            let obs = scene.observations_at(t);
            gt_boxes += obs.iter().filter(|o| o.class.is_private()).count();
            let dets = self.detect(scene, &obs);
            frames.push((t, dets));
        }
        (frames, gt_boxes)
    }

    /// Box–Muller standard normal using the detector's RNG.
    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{SceneConfig, SceneGenerator, TimeSpan};

    fn scene() -> Scene {
        SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.2)).generate()
    }

    #[test]
    fn perfect_detector_detects_everything() {
        let scene = scene();
        let mut det = Detector::new(DetectorConfig::perfect());
        let t = Timestamp::from_secs(300.0);
        let obs = scene.observations_at(t);
        let dets = det.detect(&scene, &obs);
        assert_eq!(dets.len(), obs.len());
        for d in &dets {
            assert!(d.source.is_some());
        }
    }

    #[test]
    fn miss_rate_is_respected_on_average() {
        let scene = scene();
        let mut det = Detector::new(DetectorConfig { miss_rate: 0.5, false_positives_per_frame: 0.0, ..Default::default() });
        let (frames, gt) = det.detect_span(&scene, &TimeSpan::between_secs(0.0, 600.0));
        let detected: usize = frames
            .iter()
            .map(|(_, d)| d.iter().filter(|x| x.source_class.is_some_and(|c| c.is_private())).count())
            .sum();
        assert!(gt > 100, "need enough boxes for the statistic, got {gt}");
        let ratio = detected as f64 / (gt as f64 + 1e-9);
        assert!(ratio > 0.4 && ratio < 0.6, "expected roughly half detected, got {ratio}");
    }

    #[test]
    fn false_positives_have_no_source() {
        let scene = scene();
        let mut det = Detector::new(DetectorConfig {
            miss_rate: 1.0,
            false_positives_per_frame: 2.0,
            ..Default::default()
        });
        let obs = scene.observations_at(Timestamp::from_secs(100.0));
        let dets = det.detect(&scene, &obs);
        assert!(!dets.is_empty());
        assert!(dets.iter().all(|d| d.source.is_none()));
    }

    #[test]
    fn detection_boxes_stay_inside_frame() {
        let scene = scene();
        let mut det = Detector::new(DetectorConfig { localization_jitter: 0.5, ..Default::default() });
        for secs in [10.0, 60.0, 300.0] {
            let obs = scene.observations_at(Timestamp::from_secs(secs));
            for d in det.detect(&scene, &obs) {
                assert!(d.bbox.x >= 0.0 && d.bbox.y >= 0.0);
                assert!(d.bbox.x + d.bbox.w <= scene.frame_size.width as f64 + 1e-6);
                assert!(d.bbox.y + d.bbox.h <= scene.frame_size.height as f64 + 1e-6);
            }
        }
    }

    #[test]
    fn detector_is_reproducible_for_a_seed() {
        let scene = scene();
        let obs = scene.observations_at(Timestamp::from_secs(120.0));
        let a = Detector::new(DetectorConfig::campus()).detect(&scene, &obs);
        let b = Detector::new(DetectorConfig::campus()).detect(&scene, &obs);
        assert_eq!(a, b);
        let c = Detector::new(DetectorConfig::campus().with_seed(99)).detect(&scene, &obs);
        assert!(a.len() != c.len() || a != c);
    }

    #[test]
    fn per_video_presets_match_table1_miss_rates() {
        assert!((DetectorConfig::campus().miss_rate - 0.29).abs() < 1e-12);
        assert!((DetectorConfig::highway().miss_rate - 0.05).abs() < 1e-12);
        assert!((DetectorConfig::urban().miss_rate - 0.76).abs() < 1e-12);
    }

    #[test]
    fn scores_respect_floor() {
        let scene = scene();
        let mut det = Detector::new(DetectorConfig { score_floor: 0.8, ..Default::default() });
        let obs = scene.observations_at(Timestamp::from_secs(200.0));
        for d in det.detect(&scene, &obs) {
            assert!(d.score >= 0.8 && d.score <= 1.0);
        }
    }
}
