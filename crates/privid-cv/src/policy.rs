//! Automatic `(ρ, K)` policy estimation from past footage (§5.2, §7.1).
//!
//! The video owner's workflow: analyse historical video with the (imperfect)
//! CV pipeline, take the maximum observed track duration as ρ (optionally
//! padded by a safety factor), pick K from how often individuals re-appear,
//! and — when masks are offered — repeat the analysis under each candidate
//! mask to publish a *map from masks to policies* (Appendix F.2).

use crate::duration::{DurationEstimate, DurationEstimator};
use privid_video::{Mask, Scene, Seconds, TimeSpan};
use serde::{Deserialize, Serialize};

/// A `(ρ, K)` policy estimated from footage, with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatedPolicy {
    /// Estimated ρ: maximum per-appearance duration, in seconds.
    pub rho_secs: Seconds,
    /// Estimated K: maximum number of appearances per individual.
    pub k: u32,
    /// The raw duration estimate this policy was derived from.
    pub estimate: DurationEstimate,
}

/// Derives `(ρ, K)` policies from scenes.
#[derive(Debug, Clone)]
pub struct PolicyEstimator {
    estimator: DurationEstimator,
    /// Multiplicative safety factor applied to the estimated maximum duration.
    safety_factor: f64,
    /// K to publish; the paper's policies protect individuals appearing up to
    /// `default_k` times within a query window.
    default_k: u32,
}

impl PolicyEstimator {
    /// Construct a policy estimator with a 10% safety margin and K = 2.
    pub fn new(estimator: DurationEstimator) -> Self {
        PolicyEstimator { estimator, safety_factor: 1.1, default_k: 2 }
    }

    /// The per-video preset.
    pub fn for_video(video: &str) -> Self {
        PolicyEstimator::new(DurationEstimator::for_video(video))
    }

    /// Override the safety factor.
    pub fn with_safety_factor(mut self, f: f64) -> Self {
        self.safety_factor = f.max(1.0);
        self
    }

    /// Override K.
    pub fn with_k(mut self, k: u32) -> Self {
        self.default_k = k.max(1);
        self
    }

    /// Estimate a policy for a scene using the whole recording as history.
    pub fn estimate(&self, scene: &Scene) -> EstimatedPolicy {
        self.estimate_masked(scene, &scene.span.clone(), None)
    }

    /// Estimate a policy from a specific historical span under an optional mask.
    pub fn estimate_masked(&self, scene: &Scene, history: &TimeSpan, mask: Option<&Mask>) -> EstimatedPolicy {
        let estimate = self.estimator.estimate_masked(scene, history, mask);
        EstimatedPolicy {
            rho_secs: estimate.max_duration_secs * self.safety_factor,
            k: self.default_k,
            estimate,
        }
    }

    /// Build the mask → policy map the video owner publishes at camera
    /// registration time (§7.1): for each candidate mask, the `(ρ, K)` that
    /// preserves the same privacy goal.
    pub fn policy_map<'m>(
        &self,
        scene: &Scene,
        history: &TimeSpan,
        masks: impl IntoIterator<Item = &'m Mask>,
    ) -> Vec<(&'m Mask, EstimatedPolicy)> {
        masks.into_iter().map(|m| (m, self.estimate_masked(scene, history, Some(m)))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{GridSpec, PresenceHeatmap, SceneConfig, SceneGenerator};

    fn scene() -> Scene {
        SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate()
    }

    #[test]
    fn estimated_policy_covers_ground_truth() {
        let scene = scene();
        let policy = PolicyEstimator::for_video("campus").estimate(&scene);
        let gt_max = scene.max_segment_duration(|o| o.class.is_private());
        assert!(
            policy.rho_secs >= gt_max,
            "policy ρ {} must cover ground-truth max duration {gt_max}",
            policy.rho_secs
        );
        assert!(policy.k >= 1);
    }

    #[test]
    fn safety_factor_scales_rho() {
        let scene = scene();
        let base = PolicyEstimator::for_video("campus").with_safety_factor(1.0).estimate(&scene);
        let padded = PolicyEstimator::for_video("campus").with_safety_factor(1.5).estimate(&scene);
        assert!(padded.rho_secs > base.rho_secs * 1.3);
    }

    #[test]
    fn masked_policy_has_smaller_rho() {
        let scene = scene();
        let grid = GridSpec::coarse(scene.frame_size);
        let heat = PresenceHeatmap::compute(&scene, grid);
        let mask = Mask::from_cells(grid, heat.hottest_cells(60));
        let estimator = PolicyEstimator::for_video("campus");
        let history = scene.span;
        let unmasked = estimator.estimate_masked(&scene, &history, None);
        let masked = estimator.estimate_masked(&scene, &history, Some(&mask));
        assert!(
            masked.rho_secs <= unmasked.rho_secs,
            "masking lingering regions must not increase ρ ({} vs {})",
            masked.rho_secs,
            unmasked.rho_secs
        );
        // And the masked policy still covers the *masked* ground truth.
        let masked_gt = scene.max_observable_duration(Some(&mask), |o| o.class.is_private());
        assert!(masked.rho_secs >= masked_gt);
    }

    #[test]
    fn policy_map_has_one_entry_per_mask() {
        let scene = scene();
        let grid = GridSpec::coarse(scene.frame_size);
        let heat = PresenceHeatmap::compute(&scene, grid);
        let masks: Vec<Mask> = vec![
            Mask::from_cells(grid, heat.hottest_cells(10)),
            Mask::from_cells(grid, heat.hottest_cells(40)),
        ];
        let history = TimeSpan::between_secs(0.0, 900.0);
        let map = PolicyEstimator::for_video("campus").policy_map(&scene, &history, masks.iter());
        assert_eq!(map.len(), 2);
        // The larger mask cannot yield a larger ρ than the smaller one.
        assert!(map[1].1.rho_secs <= map[0].1.rho_secs + 1e-9);
    }

    #[test]
    fn k_override_is_respected() {
        let scene = scene();
        let policy = PolicyEstimator::for_video("campus").with_k(5).estimate(&scene);
        assert_eq!(policy.k, 5);
    }
}
