//! Duration (persistence) estimation: the video owner's tool for choosing a
//! `(ρ, K)` policy from past footage (§5.2, Appendix A).
//!
//! The pipeline is: run the (imperfect) detector over each frame of a video
//! segment, feed detections to the SORT-style tracker, and read off each
//! confirmed track's duration. Table 1's claim is that the *maximum* of those
//! durations is a conservative (over-)estimate of the true maximum duration
//! any individual is visible, even when a large fraction of boxes is missed.
//! Conservatism comes from two mechanisms this module preserves: identity
//! switches chain distinct objects into longer tracks, and the estimator adds
//! the tracker's `max_age` coasting window to account for the time an object
//! could remain present but undetected.

use crate::detector::{Detection, Detector, DetectorConfig};
use crate::tracker::{Track, Tracker, TrackerConfig};
use privid_video::{Mask, ObjectId, Scene, Seconds, TimeSpan};
use serde::{Deserialize, Serialize};

/// Summary of one confirmed track.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackSummary {
    /// Track identifier.
    pub id: u64,
    /// Track duration (first to last matched detection) in seconds.
    pub duration_secs: Seconds,
    /// Number of matched detections.
    pub hits: u32,
}

/// The result of running duration estimation over a segment of video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurationEstimate {
    /// Per-track summaries (confirmed tracks only).
    pub tracks: Vec<TrackSummary>,
    /// Maximum estimated duration including the conservative `max_age` margin.
    pub max_duration_secs: Seconds,
    /// Maximum raw track duration (no margin), for analysis.
    pub max_track_duration_secs: Seconds,
    /// Ground-truth maximum single-segment duration over private objects in
    /// the analysed span (what the estimate should upper-bound).
    pub ground_truth_max_secs: Seconds,
    /// Fraction of ground-truth boxes the detector missed (Table 1 column).
    pub miss_fraction: f64,
    /// Number of ground-truth private boxes in the analysed span.
    pub ground_truth_boxes: usize,
}

impl DurationEstimate {
    /// True if the CV estimate is a conservative bound on the ground truth —
    /// the property Table 1 demonstrates.
    pub fn is_conservative(&self) -> bool {
        self.max_duration_secs >= self.ground_truth_max_secs
    }
}

/// Number of distinct private ground-truth boxes matched by one frame's
/// detections. A real detector can emit duplicate or split boxes for a single
/// object; counting each of them as a recovered ground-truth box would inflate
/// the recall (and once `detected > gt`, push the miss fraction negative), so
/// at most one detection is credited per ground-truth box.
fn detected_private_boxes(dets: &[Detection]) -> usize {
    let mut sources: Vec<ObjectId> = dets
        .iter()
        .filter(|d| d.source_class.is_some_and(|c| c.is_private()))
        .filter_map(|d| d.source)
        .collect();
    sources.sort_unstable();
    sources.dedup();
    sources.len()
}

/// Runs detector + tracker over a scene segment and summarizes durations.
#[derive(Debug, Clone)]
pub struct DurationEstimator {
    detector_config: DetectorConfig,
    tracker_config: TrackerConfig,
    /// Whether to add the `max_age` coasting window to the maximum estimate.
    conservative_margin: bool,
}

impl DurationEstimator {
    /// Construct an estimator with the conservative margin enabled.
    pub fn new(detector_config: DetectorConfig, tracker_config: TrackerConfig) -> Self {
        DurationEstimator { detector_config, tracker_config, conservative_margin: true }
    }

    /// Disable the `max_age` margin (used to study the raw tracker output).
    pub fn without_margin(mut self) -> Self {
        self.conservative_margin = false;
        self
    }

    /// The per-video preset matching the paper's Appendix A tuning.
    pub fn for_video(video: &str) -> Self {
        match video {
            "campus" => DurationEstimator::new(DetectorConfig::campus(), TrackerConfig::campus()),
            "highway" => DurationEstimator::new(DetectorConfig::highway(), TrackerConfig::highway()),
            "urban" => DurationEstimator::new(DetectorConfig::urban(), TrackerConfig::urban()),
            _ => DurationEstimator::new(DetectorConfig::default(), TrackerConfig::default()),
        }
    }

    /// Estimate durations over `span` of the scene, without a mask.
    pub fn estimate(&self, scene: &Scene, span: &TimeSpan) -> DurationEstimate {
        self.estimate_masked(scene, span, None)
    }

    /// Estimate durations over `span` of the scene with an optional mask
    /// applied before detection (used when deriving per-mask policies, §7.1).
    pub fn estimate_masked(&self, scene: &Scene, span: &TimeSpan, mask: Option<&Mask>) -> DurationEstimate {
        let mut detector = Detector::new(self.detector_config.clone());
        let mut tracker = Tracker::new(self.tracker_config);
        let dt = scene.frame_rate.frame_duration();
        let n = (span.duration() / dt).floor() as u64;
        let mut gt_boxes = 0usize;
        let mut detected_gt_boxes = 0usize;
        for i in 0..n {
            let t = span.start.add_secs(i as f64 * dt);
            let obs = scene.observations_at_masked(t, mask);
            gt_boxes += obs.iter().filter(|o| o.class.is_private()).count();
            let dets = detector.detect(scene, &obs);
            detected_gt_boxes += detected_private_boxes(&dets);
            tracker.update(t, &dets);
        }
        let tracker_config = self.tracker_config;
        let tracks: Vec<Track> = tracker.finish();
        let confirmed: Vec<TrackSummary> = tracks
            .iter()
            .filter(|t| t.is_confirmed(&tracker_config))
            .map(|t| TrackSummary { id: t.id, duration_secs: t.duration() + dt, hits: t.hits })
            .collect();
        let max_track = confirmed.iter().map(|t| t.duration_secs).fold(0.0, f64::max);
        let margin = if self.conservative_margin { tracker_config.max_age as f64 * dt } else { 0.0 };
        // Ground truth: restricted to the analysed span and masked visibility.
        let ground_truth_max = scene
            .objects_visible_during(span)
            .into_iter()
            .filter(|o| o.class.is_private())
            .flat_map(|o| {
                o.segments
                    .iter()
                    .filter(|s| s.span.overlaps(span))
                    .map(|s| s.span.intersect(span).map(|i| i.duration()).unwrap_or(0.0))
            })
            .fold(0.0, f64::max);
        DurationEstimate {
            tracks: confirmed,
            max_duration_secs: max_track + margin,
            max_track_duration_secs: max_track,
            ground_truth_max_secs: ground_truth_max,
            // Clamped: duplicate/split detections (or any future detector that
            // over-reports) must never drive the reported miss rate negative.
            miss_fraction: if gt_boxes == 0 {
                0.0
            } else {
                (1.0 - detected_gt_boxes as f64 / gt_boxes as f64).clamp(0.0, 1.0)
            },
            ground_truth_boxes: gt_boxes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privid_video::{SceneConfig, SceneGenerator};

    fn segment() -> TimeSpan {
        // A 10-minute segment, matching the paper's Table 1 methodology.
        TimeSpan::between_secs(0.0, 600.0)
    }

    #[test]
    fn campus_estimate_is_conservative_despite_misses() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.25)).generate();
        let est = DurationEstimator::for_video("campus").estimate(&scene, &segment());
        assert!(est.ground_truth_boxes > 0);
        assert!(est.miss_fraction > 0.15, "campus detector misses ~29% of boxes, got {}", est.miss_fraction);
        assert!(
            est.is_conservative(),
            "estimate {} should bound ground truth {}",
            est.max_duration_secs,
            est.ground_truth_max_secs
        );
    }

    #[test]
    fn urban_estimate_is_conservative_despite_76pct_misses() {
        let scene = SceneGenerator::new(
            SceneConfig::urban().with_duration_hours(0.25).with_arrival_scale(0.2),
        )
        .generate();
        let est = DurationEstimator::for_video("urban").estimate(&scene, &segment());
        assert!(est.miss_fraction > 0.6, "urban detector misses ~76%, got {}", est.miss_fraction);
        assert!(est.is_conservative());
    }

    #[test]
    fn perfect_cv_recovers_ground_truth_closely() {
        let scene = SceneGenerator::new(
            SceneConfig::campus().with_duration_hours(0.25).with_arrival_scale(0.3),
        )
        .generate();
        let est = DurationEstimator::new(DetectorConfig::perfect(), TrackerConfig::default())
            .without_margin()
            .estimate(&scene, &segment());
        assert!(est.miss_fraction < 1e-9);
        // Without misses the raw max track duration should be within a frame
        // or an id-switch of the ground truth, and never dramatically smaller.
        assert!(est.max_track_duration_secs >= 0.8 * est.ground_truth_max_secs);
    }

    #[test]
    fn mask_reduces_estimated_max_duration() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.5)).generate();
        let grid = privid_video::GridSpec::coarse(scene.frame_size);
        let heat = privid_video::PresenceHeatmap::compute(&scene, grid);
        let mask = privid_video::Mask::from_cells(grid, heat.hottest_cells(50));
        let estimator = DurationEstimator::for_video("campus");
        let span = TimeSpan::between_secs(0.0, 1800.0);
        let unmasked = estimator.estimate_masked(&scene, &span, None);
        let masked = estimator.estimate_masked(&scene, &span, Some(&mask));
        assert!(
            masked.max_track_duration_secs <= unmasked.max_track_duration_secs,
            "masking cannot increase the observable max duration"
        );
    }

    #[test]
    fn duplicate_detections_count_one_ground_truth_box() {
        // Regression: a detector emitting duplicate or split boxes for one
        // ground-truth object used to be credited once per box, which could
        // push `detected > gt` and the miss fraction below zero.
        use privid_video::{BoundingBox, ObjectClass, Timestamp};
        let det = |source: Option<u64>, class: Option<ObjectClass>| Detection {
            bbox: BoundingBox::new(10.0, 10.0, 20.0, 30.0),
            class: ObjectClass::Person,
            score: 0.9,
            timestamp: Timestamp::from_secs(1.0),
            source: source.map(ObjectId),
            source_class: class,
        };
        let dets = vec![
            det(Some(1), Some(ObjectClass::Person)),
            det(Some(1), Some(ObjectClass::Person)), // split box, same object
            det(Some(2), Some(ObjectClass::Car)),
            det(Some(3), Some(ObjectClass::Tree)), // non-private: not a protected box
            det(None, None),                       // false positive: no source
        ];
        assert_eq!(detected_private_boxes(&dets), 2);
    }

    #[test]
    fn miss_fraction_is_always_a_fraction() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.2)).generate();
        for video in ["campus", "highway", "urban"] {
            let est = DurationEstimator::for_video(video).estimate(&scene, &segment());
            assert!(
                (0.0..=1.0).contains(&est.miss_fraction),
                "{video}: miss fraction {} out of range",
                est.miss_fraction
            );
        }
    }

    #[test]
    fn track_summaries_have_positive_durations() {
        let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(0.2)).generate();
        let est = DurationEstimator::for_video("campus").estimate(&scene, &segment());
        assert!(!est.tracks.is_empty());
        for t in &est.tracks {
            assert!(t.duration_secs > 0.0);
            assert!(t.hits >= TrackerConfig::campus().min_hits);
        }
    }
}
