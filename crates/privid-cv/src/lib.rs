//! # privid-cv
//!
//! Simulated computer-vision substrate for the Privid reproduction.
//!
//! The paper uses Faster-RCNN (Detectron2) for object detection and
//! DeepSORT / SORT for tracking, both to implement analyst `PROCESS`
//! executables and — more importantly for the privacy argument — to let the
//! *video owner* estimate the maximum duration any individual is visible,
//! which parameterizes the `(ρ, K)` policy (§5.2, Table 1, Appendix A).
//!
//! Real CV models are unavailable offline, and Privid never relies on their
//! internals: the relevant behaviour is "detections are imperfect (missed
//! boxes, jitter, false positives) but a tracker over them still produces a
//! conservative estimate of the maximum persistence". This crate models the
//! detector as a stochastic corruption of the scene's ground-truth
//! observations (per-class miss rates matched to the paper's Table 1) and
//! implements a genuine SORT-style tracker (greedy IoU association with
//! constant-velocity prediction, `max_age` / `min_hits` track management) on
//! top of it, so the duration-estimation pipeline is exercised end-to-end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod duration;
pub mod policy;
pub mod tracker;
pub mod tuning;

pub use detector::{Detection, Detector, DetectorConfig};
pub use duration::{DurationEstimate, DurationEstimator, TrackSummary};
pub use policy::{EstimatedPolicy, PolicyEstimator};
pub use tracker::{Track, Tracker, TrackerConfig};
pub use tuning::{tune_tracker, TuningGrid, TuningResult};
