//! Property-based tests for schema coercion and the sensitivity rules.

use privid_query::{Aggregation, ColumnDef, Relation, Schema, SensitivityContext, TableProfile, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<f64>().prop_map(Value::Num),
        "[a-zA-Z0-9]{0,8}".prop_map(Value::Str),
        Just(Value::Null),
    ]
}

proptest! {
    /// Coercion always yields exactly the schema's arity with correct types,
    /// no matter what the processor emitted.
    #[test]
    fn coercion_is_total(raw in proptest::collection::vec(arb_value(), 0..8)) {
        let schema = Schema::new(vec![
            ColumnDef::string("plate", ""),
            ColumnDef::string("color", "NONE"),
            ColumnDef::number("speed", 0.0),
        ]).unwrap();
        let coerced = schema.coerce(&raw);
        prop_assert_eq!(coerced.len(), 3);
        prop_assert!(coerced[0].as_str().is_some());
        prop_assert!(coerced[1].as_str().is_some());
        let n = coerced[2].as_num().unwrap();
        prop_assert!(n.is_finite());
    }

    /// Eq. 6.2 sensitivity is monotone in max_rows, K and rho, and the COUNT
    /// sensitivity equals the table delta regardless of wrapping filters.
    #[test]
    fn sensitivity_monotone(max_rows in 1usize..50, k in 1u32..5, rho in 0.0..600.0f64, chunk in 1.0..60.0f64) {
        let base = TableProfile { max_rows_per_chunk: max_rows, chunk_secs: chunk, rho_secs: rho, k, num_chunks: 1000 };
        let more_rows = TableProfile { max_rows_per_chunk: max_rows + 1, ..base.clone() };
        let more_k = TableProfile { k: k + 1, ..base.clone() };
        let more_rho = TableProfile { rho_secs: rho + chunk, ..base.clone() };
        prop_assert!(more_rows.delta_rows() > base.delta_rows());
        prop_assert!(more_k.delta_rows() > base.delta_rows());
        prop_assert!(more_rho.delta_rows() >= base.delta_rows());

        let mut ctx = SensitivityContext::new();
        ctx.register("t", base.clone());
        let plain = ctx.release_sensitivity(&Relation::table("t"), &Aggregation::count_star()).unwrap();
        let wrapped = ctx
            .release_sensitivity(
                &Relation::table("t").distinct_on(vec!["plate"]).project(vec!["plate"]),
                &Aggregation::count_star(),
            )
            .unwrap();
        prop_assert!((plain - base.delta_rows()).abs() < 1e-9);
        prop_assert!((wrapped - plain).abs() < 1e-9, "filters and projections never change the count sensitivity");
    }

    /// Join sensitivity equals the sum of the inputs' sensitivities for any
    /// pair of profiles (never the min).
    #[test]
    fn join_sensitivity_additive(r1 in 1usize..20, r2 in 1usize..20, rho1 in 0.0..300.0f64, rho2 in 0.0..300.0f64) {
        let p1 = TableProfile { max_rows_per_chunk: r1, chunk_secs: 5.0, rho_secs: rho1, k: 1, num_chunks: 100 };
        let p2 = TableProfile { max_rows_per_chunk: r2, chunk_secs: 10.0, rho_secs: rho2, k: 2, num_chunks: 100 };
        let mut ctx = SensitivityContext::new();
        ctx.register("a", p1.clone());
        ctx.register("b", p2.clone());
        let joined = Relation::table("a").join(Relation::table("b"), vec!["plate"], privid_query::ast::JoinKind::Inner);
        let c = ctx.constraints_of(&joined).unwrap();
        prop_assert!((c.delta_rows - (p1.delta_rows() + p2.delta_rows())).abs() < 1e-9);
    }
}
