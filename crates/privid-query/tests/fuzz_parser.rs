//! Fuzz suite for the query front door.
//!
//! The parser was written for trusted in-process strings, but the network
//! front-end feeds it attacker-controlled bytes. Whatever arrives, the
//! contract is: `parse_query` (and sensitivity planning on anything that
//! parses) returns `Ok` or a typed `Err` — it never panics, never overflows
//! the stack, never saturates a cast into an allocation.
//!
//! Three input families, from blind to sighted:
//! * raw byte soup (UTF-8-lossy decoded),
//! * token soup drawn from the query language's own vocabulary (penetrates
//!   far deeper into the grammar than random bytes),
//! * mutations of a known-good query: truncations and single-token splices.
//!
//! Plus pinned regressions for the concrete hazards the fuzz families found:
//! unbounded `((((…` recursion, `CONSUMING -5` (a negative debit *credits*
//! budget), `GROUP BY … BIN 0` (infinite planned releases), `PRODUCING 1e30`
//! (saturating cast), and non-finite numeric literals like `1e999`.

use privid_query::ast::GroupKeys;
use privid_query::{parse_query, ParsedQuery, QueryError, SensitivityContext, TableProfile};
use proptest::prelude::*;

/// A query that exercises every statement type — the mutation seed.
const SEED_QUERY: &str = "\
SPLIT cam BEGIN 0 END 600 BY TIME 10 sec STRIDE 0 sec INTO chunks;
PROCESS chunks USING counter TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0, tag:STRING=\"x\") INTO people;
SELECT COUNT(*), SUM(count) FROM (SELECT count, tag FROM people WHERE count >= 1 LIMIT 50) GROUP BY chunk BIN 60 CONSUMING 0.5;";

/// Vocabulary for token soup: every keyword and operator the grammar knows,
/// plus literals chosen to sit on its validation edges.
const VOCAB: &[&str] = &[
    "SPLIT", "PROCESS", "SELECT", "BEGIN", "END", "BY", "TIME", "STRIDE", "INTO", "USING", "TIMEOUT", "PRODUCING",
    "ROWS", "WITH", "SCHEMA", "MASK", "REGION", "FROM", "WHERE", "GROUP", "KEYS", "BIN", "LIMIT", "CONSUMING",
    "JOIN", "UNION", "ON", "AND", "OR", "COUNT", "SUM", "AVG", "VAR", "ARGMAX", "range", "sec", "min", "hours",
    "frames", "(", ")", "[", "]", ",", ";", ":", "=", "!=", ">=", "<=", "*", "cam", "chunks", "people", "count",
    "tag", "NUMBER", "STRING", "\"s\"", "0", "1", "-1", "0.5", "-0.5", "1e9", "1e300", "1e999", "-1e999",
    "9999999999999999999999", "10", "60",
];

/// The contract under test: parse, and if that succeeds, run sensitivity
/// planning the way the session layer does. Returns whether it parsed (so
/// generators can assert they reach the deep grammar at all).
fn parse_then_plan(text: &str) -> bool {
    let query: ParsedQuery = match parse_query(text) {
        Ok(q) => q,
        Err(_) => return false,
    };
    // Mirror session.rs: every PROCESS output (and split output, in case a
    // SELECT reads it directly) becomes a table; plan each SELECT with the
    // chunk-bin count its window and BIN imply.
    let mut ctx = SensitivityContext::new();
    let profile = TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 1000 };
    for p in &query.processes {
        ctx.register(&p.output, profile.clone());
    }
    for s in &query.splits {
        ctx.register(&s.output, profile.clone());
    }
    let window_secs: f64 = query.splits.iter().map(|s| s.end_secs - s.begin_secs).fold(0.0, f64::max);
    for stmt in &query.selects {
        let bins = match &stmt.group_by {
            Some(g) => match &g.keys {
                GroupKeys::ChunkBins { bin_secs } => (window_secs / bin_secs).ceil().max(1.0) as usize,
                GroupKeys::Explicit(_) => 1,
            },
            None => 1,
        };
        // Errors are fine (undefined tables, rule violations); panics are not.
        let _ = ctx.statement_sensitivities(stmt, bins);
    }
    true
}

proptest! {
    /// Raw byte soup: arbitrary bytes, lossily decoded. Nothing here should
    /// parse, and nothing here may abort.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_then_plan(&text);
    }

    /// Token soup: random words from the grammar's own vocabulary. This is
    /// the family that walks deep into statement parsing.
    #[test]
    fn token_soup_never_panics(picks in proptest::collection::vec(0usize..VOCAB.len(), 0..96)) {
        let text: String = picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        let _ = parse_then_plan(&text);
    }

    /// Truncation: every prefix of a valid query is handled — a client that
    /// dies mid-send must produce a typed error, not a hung or crashed parse.
    #[test]
    fn truncated_query_never_panics(cut in 0usize..400) {
        let cut = cut.min(SEED_QUERY.len());
        // Cut at a char boundary (the seed is ASCII, so every byte is one).
        let _ = parse_then_plan(&SEED_QUERY[..cut]);
    }

    /// Splice: replace one byte span of a valid query with a random token.
    #[test]
    fn spliced_query_never_panics(at in 0usize..400, len in 0usize..32, pick in 0usize..64) {
        let at = at.min(SEED_QUERY.len());
        let end = (at + len).min(SEED_QUERY.len());
        let mut text = String::new();
        text.push_str(&SEED_QUERY[..at]);
        text.push_str(VOCAB[pick % VOCAB.len()]);
        text.push_str(&SEED_QUERY[end..]);
        let _ = parse_then_plan(&text);
    }
}

#[test]
fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
    // Each "(" recurses source() → inner_select() → source(); unbounded,
    // 100k of them walked straight off the thread stack.
    let hostile = format!("SELECT COUNT(*) FROM {}t{};", "(".repeat(100_000), ")".repeat(100_000));
    match parse_query(&hostile) {
        Err(QueryError::Parse(msg)) => assert!(msg.contains("nesting"), "got: {msg}"),
        other => panic!("expected a nesting-depth parse error, got {other:?}"),
    }
    // Unclosed parens — the truncation shape of the same attack.
    assert!(parse_query(&format!("SELECT COUNT(*) FROM {}", "(".repeat(100_000))).is_err());
    // Reasonable nesting still parses.
    let sane = format!("SELECT COUNT(*) FROM {}t{};", "(".repeat(8), ")".repeat(8));
    parse_query(&sane).expect("8 levels of nesting is a legal query");
}

#[test]
fn non_positive_consuming_is_rejected() {
    // A negative ε passes `requested <= available` trivially and its debit
    // *adds* budget — an attacker-reachable privacy bug, not a typo.
    for eps in ["-5", "-0.5", "0", "0.0"] {
        let q = SEED_QUERY.replace("CONSUMING 0.5", &format!("CONSUMING {eps}"));
        match parse_query(&q) {
            Err(QueryError::Parse(msg)) => assert!(msg.contains("CONSUMING"), "for {eps}: {msg}"),
            other => panic!("CONSUMING {eps} must be rejected, got {other:?}"),
        }
    }
    // A positive ε still parses.
    parse_query(&SEED_QUERY.replace("CONSUMING 0.5", "CONSUMING 0.25")).unwrap();
}

#[test]
fn zero_or_negative_bin_is_rejected() {
    // BIN 0 made the planned release count (window / bin) infinite, which
    // saturated `as usize` and aborted on the Vec allocation downstream.
    for bin in ["0", "0 sec", "-60"] {
        let q = SEED_QUERY.replace("BIN 60", &format!("BIN {bin}"));
        match parse_query(&q) {
            Err(QueryError::Parse(msg)) => assert!(msg.contains("BIN"), "for {bin}: {msg}"),
            other => panic!("BIN {bin} must be rejected, got {other:?}"),
        }
    }
}

#[test]
fn saturating_counts_are_rejected() {
    for (from, to) in [
        ("PRODUCING 20 ROWS", "PRODUCING 1e30 ROWS"),
        ("PRODUCING 20 ROWS", "PRODUCING -3 ROWS"),
        ("PRODUCING 20 ROWS", "PRODUCING 2.5 ROWS"),
        ("LIMIT 50", "LIMIT 1e30"),
        ("LIMIT 50", "LIMIT -1"),
    ] {
        let q = SEED_QUERY.replace(from, to);
        assert!(
            matches!(parse_query(&q), Err(QueryError::Parse(_))),
            "{to} must be a typed parse error"
        );
    }
}

#[test]
fn non_finite_literals_are_rejected() {
    // The lexer has no exponent notation, but a long enough digit string
    // overflows str::parse::<f64> to +inf (not an error!); every numeric
    // literal must be finite before it can touch sensitivity or budget
    // arithmetic.
    let huge = "9".repeat(400);
    assert!(huge.parse::<f64>().unwrap().is_infinite(), "the literal really does overflow parse");
    for lit in [huge.clone(), format!("-{huge}")] {
        let q = SEED_QUERY.replace("END 600", &format!("END {lit}"));
        match parse_query(&q) {
            Err(QueryError::Parse(msg)) => assert!(msg.contains("finite"), "got: {msg}"),
            other => panic!("a non-finite literal must be rejected, got {other:?}"),
        }
    }
    // A duration whose unit multiplication overflows is likewise typed.
    let near_max = format!("9{}", "0".repeat(307)); // ~9e307: finite, but ×3600 overflows
    let q = SEED_QUERY.replace("END 600", &format!("END {near_max} hours"));
    match parse_query(&q) {
        Err(QueryError::Parse(msg)) => assert!(msg.contains("overflow"), "got: {msg}"),
        other => panic!("an overflowing duration must be rejected, got {other:?}"),
    }
}

#[test]
fn negative_stride_is_rejected() {
    // chunk + stride <= 0 would walk the chunk planner backwards forever.
    let q = SEED_QUERY.replace("STRIDE 0 sec", "STRIDE -10 sec");
    match parse_query(&q) {
        Err(QueryError::Parse(msg)) => assert!(msg.contains("STRIDE"), "got: {msg}"),
        other => panic!("negative STRIDE must be rejected, got {other:?}"),
    }
}

#[test]
fn giant_window_tiny_bin_is_a_typed_refusal_not_an_abort() {
    // Parses fine (every literal is finite and positive) but plans an
    // astronomical release count: the planner must refuse, not allocate.
    let q = "
        SPLIT cam BEGIN 0 END 100000000000000 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING counter TIMEOUT 1 sec PRODUCING 20 ROWS WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people GROUP BY chunk BIN 0.001 CONSUMING 0.5;";
    let parsed = parse_query(q).expect("the query is syntactically valid");
    let mut ctx = SensitivityContext::new();
    ctx.register("people", TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 1000 });
    let stmt = &parsed.selects[0];
    let bins = (1e14f64 / 0.001).ceil() as usize;
    match ctx.statement_sensitivities(stmt, bins) {
        Err(QueryError::Unsupported(msg)) => assert!(msg.contains("releases"), "got: {msg}"),
        other => panic!("expected a planned-release cap refusal, got {other:?}"),
    }
}

#[test]
fn the_seed_query_still_parses_and_plans() {
    assert!(parse_then_plan(SEED_QUERY), "hardening must not reject the valid seed query");
}
