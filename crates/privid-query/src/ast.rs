//! The typed query AST: the restricted relational algebra of Appendix D plus
//! the aggregation layer of a `SELECT` statement.
//!
//! Queries can be built programmatically with these types or parsed from the
//! textual language ([`crate::parser`]). The executor ([`crate::exec`]) and
//! the sensitivity calculator ([`crate::sensitivity`]) both walk this AST, so
//! the set of constructs here is exactly the set for which Fig. 10 provides
//! propagation rules — anything else is rejected at construction or parse
//! time rather than silently mis-bounded.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Aggregation functions supported by the outer SELECT (Fig. 10, top table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateFunction {
    /// `COUNT(col)` / `COUNT(*)`: number of rows.
    Count,
    /// `SUM(col)`: sum of a numeric column (requires a declared range).
    Sum,
    /// `AVG(col)`: mean of a numeric column (requires range and size bounds).
    Avg,
    /// `VAR(col)`: variance of a numeric column (requires range and size bounds).
    Var,
    /// `ARGMAX(col)`: the GROUP BY key with the largest count; released via
    /// report-noisy-max.
    ArgMax,
}

impl AggregateFunction {
    /// Keyword as written in the query language.
    pub fn keyword(&self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Var => "VAR",
            AggregateFunction::ArgMax => "ARGMAX",
        }
    }

    /// True if the function needs the aggregated column's range to be bounded.
    pub fn needs_range(&self) -> bool {
        matches!(self, AggregateFunction::Sum | AggregateFunction::Avg | AggregateFunction::Var)
    }

    /// True if the function needs an upper bound on the relation's row count.
    pub fn needs_size(&self) -> bool {
        matches!(self, AggregateFunction::Avg | AggregateFunction::Var)
    }
}

/// One aggregation of the outer SELECT. Each aggregation (and each GROUP BY
/// key of it) is a separate data release with its own noise sample and its
/// own slice of the privacy budget (§6.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregation {
    /// The function to apply.
    pub function: AggregateFunction,
    /// The column aggregated; `None` means `COUNT(*)`.
    pub column: Option<String>,
    /// Declared value range `range(col, lo, hi)`; values are truncated into
    /// this range before aggregation and the range bounds the sensitivity.
    pub range: Option<(f64, f64)>,
}

impl Aggregation {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Aggregation { function: AggregateFunction::Count, column: None, range: None }
    }

    /// `COUNT(col)`.
    pub fn count(column: impl Into<String>) -> Self {
        Aggregation { function: AggregateFunction::Count, column: Some(column.into()), range: None }
    }

    /// `SUM(range(col, lo, hi))`.
    pub fn sum(column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Aggregation { function: AggregateFunction::Sum, column: Some(column.into()), range: Some((lo, hi)) }
    }

    /// `AVG(range(col, lo, hi))`.
    pub fn avg(column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Aggregation { function: AggregateFunction::Avg, column: Some(column.into()), range: Some((lo, hi)) }
    }

    /// `VAR(range(col, lo, hi))`.
    pub fn var(column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Aggregation { function: AggregateFunction::Var, column: Some(column.into()), range: Some((lo, hi)) }
    }

    /// `ARGMAX(col)`.
    pub fn argmax(column: impl Into<String>) -> Self {
        Aggregation { function: AggregateFunction::ArgMax, column: Some(column.into()), range: None }
    }
}

/// Row predicates allowed in a WHERE clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `col = "literal"` (string equality).
    EqStr(String, String),
    /// `col = number`.
    EqNum(String, f64),
    /// `col != "literal"`.
    NeStr(String, String),
    /// `lo <= col <= hi`.
    Between(String, f64, f64),
    /// `col >= number`.
    Ge(String, f64),
    /// `col <= number`.
    Le(String, f64),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluate the predicate against a resolved column lookup.
    pub fn eval(&self, lookup: &impl Fn(&str) -> Option<Value>) -> bool {
        match self {
            Predicate::EqStr(c, s) => lookup(c).and_then(|v| v.as_str().map(|x| x == s)).unwrap_or(false),
            Predicate::NeStr(c, s) => lookup(c).and_then(|v| v.as_str().map(|x| x != s)).unwrap_or(false),
            Predicate::EqNum(c, n) => lookup(c).and_then(|v| v.as_num().map(|x| (x - n).abs() < 1e-12)).unwrap_or(false),
            Predicate::Between(c, lo, hi) => {
                lookup(c).and_then(|v| v.as_num().map(|x| x >= *lo && x <= *hi)).unwrap_or(false)
            }
            Predicate::Ge(c, n) => lookup(c).and_then(|v| v.as_num().map(|x| x >= *n)).unwrap_or(false),
            Predicate::Le(c, n) => lookup(c).and_then(|v| v.as_num().map(|x| x <= *n)).unwrap_or(false),
            Predicate::And(a, b) => a.eval(lookup) && b.eval(lookup),
            Predicate::Or(a, b) => a.eval(lookup) || b.eval(lookup),
            Predicate::Not(a) => !a.eval(lookup),
        }
    }

    /// Columns referenced by the predicate.
    pub fn columns(&self) -> Vec<String> {
        match self {
            Predicate::EqStr(c, _)
            | Predicate::NeStr(c, _)
            | Predicate::EqNum(c, _)
            | Predicate::Between(c, _, _)
            | Predicate::Ge(c, _)
            | Predicate::Le(c, _) => vec![c.clone()],
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                let mut v = a.columns();
                v.extend(b.columns());
                v
            }
            Predicate::Not(a) => a.columns(),
        }
    }
}

/// Kind of join between two inner relations (Fig. 10, bottom row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Equijoin on the key columns — set intersection on the keys.
    Inner,
    /// Outer join on the key columns — set union on the keys.
    Outer,
}

/// The restricted relational algebra over intermediate tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Relation {
    /// A base intermediate table, referenced by the name given in
    /// `PROCESS ... INTO name`.
    Table(String),
    /// `WHERE` selection.
    Filter {
        /// Input relation.
        input: Box<Relation>,
        /// Row predicate.
        predicate: Predicate,
    },
    /// `LIMIT n`.
    Limit {
        /// Input relation.
        input: Box<Relation>,
        /// Maximum number of rows kept.
        limit: usize,
    },
    /// Projection onto a subset of columns.
    Project {
        /// Input relation.
        input: Box<Relation>,
        /// Columns kept (implicit columns may be listed too).
        columns: Vec<String>,
    },
    /// `range(col, lo, hi)` applied as a transformation: values are clamped
    /// into the range, and the range constraint becomes available downstream.
    RangeConstraint {
        /// Input relation.
        input: Box<Relation>,
        /// Column constrained.
        column: String,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Intermediate `GROUP BY key_columns` with no aggregation: deduplication
    /// on the key columns (e.g. `GROUP BY plate` so one car = one row).
    Distinct {
        /// Input relation.
        input: Box<Relation>,
        /// Key columns the output is distinct on.
        columns: Vec<String>,
    },
    /// Join of two relations on equal values of the key columns.
    Join {
        /// Left input.
        left: Box<Relation>,
        /// Right input.
        right: Box<Relation>,
        /// Join key columns (must exist in both inputs).
        on: Vec<String>,
        /// Inner (intersection) or outer (union) join.
        kind: JoinKind,
    },
}

impl Relation {
    /// Convenience constructor: base table.
    pub fn table(name: impl Into<String>) -> Self {
        Relation::Table(name.into())
    }

    /// Wrap in a filter.
    pub fn filter(self, predicate: Predicate) -> Self {
        Relation::Filter { input: Box::new(self), predicate }
    }

    /// Wrap in a limit.
    pub fn limit(self, limit: usize) -> Self {
        Relation::Limit { input: Box::new(self), limit }
    }

    /// Wrap in a projection.
    pub fn project(self, columns: Vec<&str>) -> Self {
        Relation::Project { input: Box::new(self), columns: columns.into_iter().map(String::from).collect() }
    }

    /// Wrap in a range constraint.
    pub fn with_range(self, column: impl Into<String>, lo: f64, hi: f64) -> Self {
        Relation::RangeConstraint { input: Box::new(self), column: column.into(), lo, hi }
    }

    /// Wrap in a deduplication on key columns.
    pub fn distinct_on(self, columns: Vec<&str>) -> Self {
        Relation::Distinct { input: Box::new(self), columns: columns.into_iter().map(String::from).collect() }
    }

    /// Join with another relation.
    pub fn join(self, right: Relation, on: Vec<&str>, kind: JoinKind) -> Self {
        Relation::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on.into_iter().map(String::from).collect(),
            kind,
        }
    }

    /// Names of all base tables referenced by the relation.
    pub fn base_tables(&self) -> Vec<String> {
        match self {
            Relation::Table(n) => vec![n.clone()],
            Relation::Filter { input, .. }
            | Relation::Limit { input, .. }
            | Relation::Project { input, .. }
            | Relation::RangeConstraint { input, .. }
            | Relation::Distinct { input, .. } => input.base_tables(),
            Relation::Join { left, right, .. } => {
                let mut v = left.base_tables();
                v.extend(right.base_tables());
                v
            }
        }
    }
}

/// How the outer SELECT's GROUP BY keys are specified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupKeys {
    /// Explicit `WITH KEYS [...]` list — required for analyst columns so that
    /// the set of releases cannot depend on the data (§6.2, [58]).
    Explicit(Vec<Value>),
    /// Binning of the trusted implicit `chunk` column (e.g. hourly bins).
    /// Keys are the bin start times, derived from trusted timestamps only.
    ChunkBins {
        /// Bin width in seconds.
        bin_secs: f64,
    },
}

/// The outer SELECT's GROUP BY clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupBy {
    /// Grouping column.
    pub column: String,
    /// How keys are specified.
    pub keys: GroupKeys,
}

/// A full SELECT statement: one or more aggregations over an inner relation,
/// optionally grouped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// The aggregations of the outer select; each is a separate release
    /// (multiplied by the number of GROUP BY keys, if any).
    pub aggregations: Vec<Aggregation>,
    /// The inner relation aggregated over.
    pub source: Relation,
    /// Optional GROUP BY.
    pub group_by: Option<GroupBy>,
    /// Privacy budget requested for this statement (`CONSUMING ε`); divided
    /// evenly among the statement's releases. `None` lets the system default
    /// apply.
    pub epsilon: Option<f64>,
}

impl SelectStatement {
    /// A single ungrouped aggregation.
    pub fn simple(aggregation: Aggregation, source: Relation) -> Self {
        SelectStatement { aggregations: vec![aggregation], source, group_by: None, epsilon: None }
    }

    /// Attach a GROUP BY with explicit keys.
    pub fn group_by_keys(mut self, column: impl Into<String>, keys: Vec<Value>) -> Self {
        self.group_by = Some(GroupBy { column: column.into(), keys: GroupKeys::Explicit(keys) });
        self
    }

    /// Attach a GROUP BY over chunk-time bins.
    pub fn group_by_chunk_bins(mut self, bin_secs: f64) -> Self {
        self.group_by =
            Some(GroupBy { column: crate::schema::CHUNK_COLUMN.to_string(), keys: GroupKeys::ChunkBins { bin_secs } });
        self
    }

    /// Set the requested budget.
    pub fn consuming(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// The number of data releases this statement produces: one per
    /// aggregation per explicit GROUP BY key. Chunk-binned group-bys release
    /// one value per bin of the query window; callers that know the window
    /// should use [`SelectStatement::release_count_with_bins`].
    pub fn release_count(&self) -> usize {
        let groups = match &self.group_by {
            Some(GroupBy { keys: GroupKeys::Explicit(keys), .. }) => keys.len().max(1),
            Some(GroupBy { keys: GroupKeys::ChunkBins { .. }, .. }) => 1,
            None => 1,
        };
        self.aggregations.len() * groups
    }

    /// Release count when the number of chunk bins is known.
    pub fn release_count_with_bins(&self, bins: usize) -> usize {
        let groups = match &self.group_by {
            Some(GroupBy { keys: GroupKeys::Explicit(keys), .. }) => keys.len().max(1),
            Some(GroupBy { keys: GroupKeys::ChunkBins { .. }, .. }) => bins.max(1),
            None => 1,
        };
        self.aggregations.len() * groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_constructors() {
        assert_eq!(Aggregation::count_star().column, None);
        assert_eq!(Aggregation::sum("speed", 30.0, 60.0).range, Some((30.0, 60.0)));
        assert!(AggregateFunction::Avg.needs_range());
        assert!(AggregateFunction::Avg.needs_size());
        assert!(!AggregateFunction::Count.needs_range());
        assert_eq!(AggregateFunction::ArgMax.keyword(), "ARGMAX");
    }

    #[test]
    fn predicate_evaluation() {
        let lookup = |c: &str| -> Option<Value> {
            match c {
                "color" => Some(Value::str("RED")),
                "speed" => Some(Value::num(45.0)),
                _ => None,
            }
        };
        assert!(Predicate::EqStr("color".into(), "RED".into()).eval(&lookup));
        assert!(!Predicate::EqStr("color".into(), "BLUE".into()).eval(&lookup));
        assert!(Predicate::Between("speed".into(), 30.0, 60.0).eval(&lookup));
        assert!(Predicate::And(
            Box::new(Predicate::Ge("speed".into(), 40.0)),
            Box::new(Predicate::Le("speed".into(), 50.0))
        )
        .eval(&lookup));
        assert!(Predicate::Not(Box::new(Predicate::EqNum("speed".into(), 50.0))).eval(&lookup));
        assert!(!Predicate::EqStr("missing".into(), "x".into()).eval(&lookup), "missing column never matches");
    }

    #[test]
    fn predicate_columns_collects_all() {
        let p = Predicate::And(
            Box::new(Predicate::EqStr("color".into(), "RED".into())),
            Box::new(Predicate::Ge("speed".into(), 10.0)),
        );
        assert_eq!(p.columns(), vec!["color".to_string(), "speed".to_string()]);
    }

    #[test]
    fn relation_builders_compose_and_track_base_tables() {
        let rel = Relation::table("tableA")
            .filter(Predicate::EqStr("color".into(), "RED".into()))
            .distinct_on(vec!["plate"])
            .with_range("speed", 30.0, 60.0);
        assert_eq!(rel.base_tables(), vec!["tableA".to_string()]);
        let joined = Relation::table("t1").join(Relation::table("t2"), vec!["plate"], JoinKind::Inner);
        assert_eq!(joined.base_tables(), vec!["t1".to_string(), "t2".to_string()]);
    }

    #[test]
    fn release_counts() {
        let s1 = SelectStatement::simple(Aggregation::avg("speed", 30.0, 60.0), Relation::table("tableA"));
        assert_eq!(s1.release_count(), 1);
        let s2 = SelectStatement::simple(Aggregation::count("plate"), Relation::table("tableA")).group_by_keys(
            "color",
            vec![Value::str("RED"), Value::str("WHITE"), Value::str("SILVER")],
        );
        assert_eq!(s2.release_count(), 3, "Listing 1's S2 makes three releases");
        let s3 = SelectStatement::simple(Aggregation::count_star(), Relation::table("t")).group_by_chunk_bins(3600.0);
        assert_eq!(s3.release_count_with_bins(12), 12);
    }

    #[test]
    fn consuming_sets_epsilon() {
        let s = SelectStatement::simple(Aggregation::count_star(), Relation::table("t")).consuming(0.5);
        assert_eq!(s.epsilon, Some(0.5));
    }
}
