//! Error type shared across the query layer.

use std::fmt;

/// Errors raised while parsing, validating, executing or bounding a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text could not be parsed.
    Parse(String),
    /// A referenced column does not exist in the relation's schema.
    UnknownColumn(String),
    /// A referenced table or chunk set was never defined.
    UnknownTable(String),
    /// The query violates one of Privid's interface restrictions
    /// (e.g. GROUP BY over an analyst column without explicit keys).
    Unsupported(String),
    /// An aggregation is missing a constraint it needs (range or size).
    MissingConstraint(String),
    /// A value had the wrong type for the operation.
    Type(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryError::Unsupported(m) => write!(f, "unsupported query construct: {m}"),
            QueryError::MissingConstraint(m) => write!(f, "missing constraint: {m}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(QueryError::UnknownColumn("speed".into()).to_string().contains("speed"));
        assert!(QueryError::Parse("bad token".into()).to_string().contains("bad token"));
        assert!(QueryError::MissingConstraint("range of speed".into()).to_string().contains("range"));
    }
}
