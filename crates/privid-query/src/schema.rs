//! Intermediate-table schemas, as declared in a `PROCESS ... WITH SCHEMA`
//! clause.
//!
//! Privid never trusts the analyst's processor to respect the schema: output
//! rows are coerced — extraneous columns dropped, missing or mistyped cells
//! replaced by the declared defaults — before they enter the table (§6.2).

use crate::error::QueryError;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Analyst-facing data types of the query language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// Arbitrary UTF-8 string.
    Str,
    /// IEEE-754 double.
    Num,
}

/// One declared column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Default value, used when the processor crashes, times out, or emits a
    /// missing / mistyped cell.
    pub default: Value,
}

impl ColumnDef {
    /// A string column with the given default.
    pub fn string(name: impl Into<String>, default: impl Into<String>) -> Self {
        ColumnDef { name: name.into(), dtype: DataType::Str, default: Value::Str(default.into()) }
    }

    /// A numeric column with the given default.
    pub fn number(name: impl Into<String>, default: f64) -> Self {
        ColumnDef { name: name.into(), dtype: DataType::Num, default: Value::Num(default) }
    }
}

/// A full table schema: the analyst-declared columns plus the two implicit
/// columns Privid adds itself (`chunk`, the chunk's start timestamp in
/// seconds, and `region`, the spatial-split region id).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Analyst-declared columns, in declaration order.
    pub columns: Vec<ColumnDef>,
}

/// Name of the implicit chunk-timestamp column.
pub const CHUNK_COLUMN: &str = "chunk";
/// Name of the implicit spatial-region column.
pub const REGION_COLUMN: &str = "region";

impl Schema {
    /// Build a schema from analyst columns. Rejects duplicate names and
    /// collisions with the implicit columns.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, QueryError> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if c.name == CHUNK_COLUMN || c.name == REGION_COLUMN {
                return Err(QueryError::Unsupported(format!(
                    "column name '{}' is reserved for Privid's implicit columns",
                    c.name
                )));
            }
            if !seen.insert(c.name.clone()) {
                return Err(QueryError::Unsupported(format!("duplicate column '{}'", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// The schema of Listing 1's `tableA`: `(plate:STRING="", color:STRING="",
    /// speed:NUMBER=0)`.
    pub fn listing1() -> Self {
        Schema::new(vec![
            ColumnDef::string("plate", ""),
            ColumnDef::string("color", ""),
            ColumnDef::number("speed", 0.0),
        ])
        .expect("static schema is valid")
    }

    /// Number of analyst-declared columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if there are no analyst columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of an analyst column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// True if `name` is one of the implicit columns Privid adds.
    pub fn is_implicit(name: &str) -> bool {
        name == CHUNK_COLUMN || name == REGION_COLUMN
    }

    /// True if the column exists (analyst-declared or implicit).
    pub fn has_column(&self, name: &str) -> bool {
        Self::is_implicit(name) || self.column_index(name).is_some()
    }

    /// The default row: every analyst column at its declared default.
    /// Emitted when a processor crashes or exceeds its timeout (Appendix B).
    pub fn default_values(&self) -> Vec<Value> {
        self.columns.iter().map(|c| c.default.clone()).collect()
    }

    /// Coerce a processor-emitted row to this schema: truncate extra cells,
    /// fill missing cells with defaults, and replace mistyped cells with
    /// defaults. The output always has exactly `self.len()` values.
    pub fn coerce(&self, raw: &[Value]) -> Vec<Value> {
        self.coerce_into(raw.to_vec())
    }

    /// Consuming form of [`Schema::coerce`]: cells that already match the
    /// schema are moved into place instead of cloned, so well-behaved
    /// processors (the common case) pay no per-cell string copy. Semantics
    /// are identical to `coerce`.
    pub fn coerce_into(&self, mut raw: Vec<Value>) -> Vec<Value> {
        raw.truncate(self.columns.len());
        for (col, v) in self.columns.iter().zip(raw.iter_mut()) {
            let matches = match (col.dtype, &*v) {
                (DataType::Str, Value::Str(_)) => true,
                (DataType::Num, Value::Num(n)) => n.is_finite(),
                _ => false,
            };
            if !matches {
                *v = col.default.clone();
            }
        }
        for col in self.columns.iter().skip(raw.len()) {
            raw.push(col.default.clone());
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_schema_shape() {
        let s = Schema::listing1();
        assert_eq!(s.len(), 3);
        assert_eq!(s.column_index("speed"), Some(2));
        assert_eq!(s.column("plate").unwrap().dtype, DataType::Str);
        assert!(s.has_column("chunk"), "implicit chunk column is always present");
        assert!(s.has_column("region"));
        assert!(!s.has_column("nonexistent"));
    }

    #[test]
    fn reserved_and_duplicate_names_rejected() {
        assert!(Schema::new(vec![ColumnDef::number("chunk", 0.0)]).is_err());
        assert!(Schema::new(vec![ColumnDef::number("region", 0.0)]).is_err());
        assert!(Schema::new(vec![ColumnDef::number("x", 0.0), ColumnDef::string("x", "")]).is_err());
    }

    #[test]
    fn coercion_truncates_fills_and_fixes_types() {
        let s = Schema::listing1();
        // Too many cells → truncated; wrong type for speed → default.
        let coerced = s.coerce(&[Value::str("ABC123"), Value::str("RED"), Value::str("fast"), Value::num(99.0)]);
        assert_eq!(coerced, vec![Value::str("ABC123"), Value::str("RED"), Value::num(0.0)]);
        // Too few cells → defaults appended.
        let coerced = s.coerce(&[Value::str("XYZ")]);
        assert_eq!(coerced, vec![Value::str("XYZ"), Value::str(""), Value::num(0.0)]);
        // Non-finite numbers are replaced by the default.
        let coerced = s.coerce(&[Value::str("A"), Value::str("B"), Value::num(f64::NAN)]);
        assert_eq!(coerced[2], Value::num(0.0));
    }

    #[test]
    fn default_values_match_declarations() {
        let s = Schema::new(vec![ColumnDef::string("label", "none"), ColumnDef::number("count", 1.0)]).unwrap();
        assert_eq!(s.default_values(), vec![Value::str("none"), Value::num(1.0)]);
    }
}
