//! Execution of SELECT statements over intermediate tables.
//!
//! The executor computes *raw* (pre-noise) release values. Privid never shows
//! these to the analyst: `privid-core` adds Laplace noise calibrated by the
//! sensitivity calculator before anything leaves the system. Keeping the two
//! concerns separate makes it possible to test the aggregation semantics
//! exactly and the privacy mechanism statistically.

use crate::ast::{AggregateFunction, Aggregation, GroupBy, GroupKeys, JoinKind, Relation, SelectStatement};
use crate::error::QueryError;
use crate::schema::{CHUNK_COLUMN, REGION_COLUMN};
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The raw value of one data release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReleaseValue {
    /// A numeric aggregate (COUNT / SUM / AVG / VAR). Noise is added directly.
    Number(f64),
    /// ARGMAX candidates: per-key counts. `privid-core` adds independent noise
    /// to every count and releases only the winning key (report-noisy-max).
    Candidates(Vec<(String, f64)>),
}

impl ReleaseValue {
    /// The numeric content, if this is a plain number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ReleaseValue::Number(n) => Some(*n),
            ReleaseValue::Candidates(_) => None,
        }
    }
}

/// One raw data release: a label describing which aggregation / group key it
/// belongs to, and its value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawRelease {
    /// Human-readable label, e.g. `AVG(speed)` or `COUNT(plate)[color=RED]`.
    pub label: String,
    /// The group key, if this release belongs to a GROUP BY bucket.
    pub group_key: Option<String>,
    /// The raw value.
    pub value: ReleaseValue,
}

/// A relation materialized into named columns and rows.
#[derive(Debug, Clone, PartialEq)]
struct Materialized {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Materialized {
    fn col_idx(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    fn get(&self, row: &[Value], name: &str) -> Option<Value> {
        self.col_idx(name).and_then(|i| row.get(i).cloned())
    }

    fn from_table(table: &Table) -> Materialized {
        let mut columns: Vec<String> = table.schema.columns.iter().map(|c| c.name.clone()).collect();
        columns.push(CHUNK_COLUMN.to_string());
        columns.push(REGION_COLUMN.to_string());
        let rows = table
            .rows
            .iter()
            .map(|r| {
                let mut v = r.values.clone();
                v.push(Value::Num(r.chunk));
                v.push(Value::Num(r.region as f64));
                v
            })
            .collect();
        Materialized { columns, rows }
    }
}

/// Evaluate an inner relation against the named base tables.
fn eval(rel: &Relation, tables: &HashMap<String, Table>) -> Result<Materialized, QueryError> {
    match rel {
        Relation::Table(name) => {
            tables.get(name).map(Materialized::from_table).ok_or_else(|| QueryError::UnknownTable(name.clone()))
        }
        Relation::Filter { input, predicate } => {
            let m = eval(input, tables)?;
            for col in predicate.columns() {
                if m.col_idx(&col).is_none() {
                    return Err(QueryError::UnknownColumn(col));
                }
            }
            let rows = m
                .rows
                .iter()
                .filter(|row| predicate.eval(&|c: &str| m.get(row, c)))
                .cloned()
                .collect();
            Ok(Materialized { columns: m.columns.clone(), rows })
        }
        Relation::Limit { input, limit } => {
            let mut m = eval(input, tables)?;
            m.rows.truncate(*limit);
            Ok(m)
        }
        Relation::Project { input, columns } => {
            let m = eval(input, tables)?;
            let mut idx = Vec::with_capacity(columns.len());
            for c in columns {
                idx.push(m.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone()))?);
            }
            let rows = m.rows.iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect()).collect();
            Ok(Materialized { columns: columns.clone(), rows })
        }
        Relation::RangeConstraint { input, column, lo, hi } => {
            let m = eval(input, tables)?;
            let i = m.col_idx(column).ok_or_else(|| QueryError::UnknownColumn(column.clone()))?;
            let rows = m
                .rows
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    if let Value::Num(n) = r[i] {
                        r[i] = Value::Num(n.clamp(*lo, *hi));
                    }
                    r
                })
                .collect();
            Ok(Materialized { columns: m.columns.clone(), rows })
        }
        Relation::Distinct { input, columns } => {
            let m = eval(input, tables)?;
            let mut idx = Vec::with_capacity(columns.len());
            for c in columns {
                idx.push(m.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone()))?);
            }
            let mut seen = std::collections::HashSet::new();
            let rows = m
                .rows
                .iter()
                .filter(|r| {
                    let key: Vec<String> = idx.iter().map(|&i| r[i].group_key()).collect();
                    seen.insert(key)
                })
                .cloned()
                .collect();
            Ok(Materialized { columns: m.columns.clone(), rows })
        }
        Relation::Join { left, right, on, kind } => {
            let l = eval(left, tables)?;
            let r = eval(right, tables)?;
            let l_idx: Vec<usize> = on
                .iter()
                .map(|c| l.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                .collect::<Result<_, _>>()?;
            let r_idx: Vec<usize> = on
                .iter()
                .map(|c| r.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                .collect::<Result<_, _>>()?;
            match kind {
                JoinKind::Inner => {
                    // Output: join keys, then non-key columns of the left, then
                    // non-key columns of the right not already named.
                    let mut columns: Vec<String> = on.clone();
                    let l_extra: Vec<usize> =
                        (0..l.columns.len()).filter(|i| !l_idx.contains(i)).collect();
                    for &i in &l_extra {
                        columns.push(l.columns[i].clone());
                    }
                    let r_extra: Vec<usize> = (0..r.columns.len())
                        .filter(|i| !r_idx.contains(i) && !columns.contains(&r.columns[*i]))
                        .collect();
                    for &i in &r_extra {
                        columns.push(r.columns[i].clone());
                    }
                    let mut by_key: HashMap<Vec<String>, Vec<&Vec<Value>>> = HashMap::new();
                    for row in &r.rows {
                        let key: Vec<String> = r_idx.iter().map(|&i| row[i].group_key()).collect();
                        by_key.entry(key).or_default().push(row);
                    }
                    let mut rows = Vec::new();
                    for lrow in &l.rows {
                        let key: Vec<String> = l_idx.iter().map(|&i| lrow[i].group_key()).collect();
                        if let Some(matches) = by_key.get(&key) {
                            for rrow in matches {
                                let mut out: Vec<Value> = l_idx.iter().map(|&i| lrow[i].clone()).collect();
                                out.extend(l_extra.iter().map(|&i| lrow[i].clone()));
                                out.extend(r_extra.iter().map(|&i| rrow[i].clone()));
                                rows.push(out);
                            }
                        }
                    }
                    Ok(Materialized { columns, rows })
                }
                JoinKind::Outer => {
                    // Union on the key columns plus every column present in
                    // both inputs: concatenate the rows of both sides.
                    let shared: Vec<String> =
                        l.columns.iter().filter(|c| r.col_idx(c).is_some()).cloned().collect();
                    let mut columns = on.clone();
                    for c in &shared {
                        if !columns.contains(c) {
                            columns.push(c.clone());
                        }
                    }
                    let project = |m: &Materialized| -> Result<Vec<Vec<Value>>, QueryError> {
                        let idx: Vec<usize> = columns
                            .iter()
                            .map(|c| m.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                            .collect::<Result<_, _>>()?;
                        Ok(m.rows.iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect()).collect())
                    };
                    let mut rows = project(&l)?;
                    rows.extend(project(&r)?);
                    Ok(Materialized { columns, rows })
                }
            }
        }
    }
}

/// Compute one aggregation over a set of rows.
fn aggregate(m: &Materialized, rows: &[&Vec<Value>], agg: &Aggregation) -> Result<ReleaseValue, QueryError> {
    let values = |col: &str| -> Result<Vec<f64>, QueryError> {
        let i = m.col_idx(col).ok_or_else(|| QueryError::UnknownColumn(col.to_string()))?;
        Ok(rows
            .iter()
            .filter_map(|r| r[i].as_num())
            .map(|v| match agg.range {
                Some((lo, hi)) => v.clamp(lo, hi),
                None => v,
            })
            .collect())
    };
    match agg.function {
        AggregateFunction::Count => {
            if let Some(col) = &agg.column {
                if m.col_idx(col).is_none() {
                    return Err(QueryError::UnknownColumn(col.clone()));
                }
            }
            Ok(ReleaseValue::Number(rows.len() as f64))
        }
        AggregateFunction::Sum => {
            let col = agg.column.as_ref().ok_or_else(|| QueryError::Unsupported("SUM needs a column".into()))?;
            Ok(ReleaseValue::Number(values(col)?.iter().sum()))
        }
        AggregateFunction::Avg => {
            let col = agg.column.as_ref().ok_or_else(|| QueryError::Unsupported("AVG needs a column".into()))?;
            let v = values(col)?;
            if v.is_empty() {
                Ok(ReleaseValue::Number(0.0))
            } else {
                Ok(ReleaseValue::Number(v.iter().sum::<f64>() / v.len() as f64))
            }
        }
        AggregateFunction::Var => {
            let col = agg.column.as_ref().ok_or_else(|| QueryError::Unsupported("VAR needs a column".into()))?;
            let v = values(col)?;
            if v.is_empty() {
                Ok(ReleaseValue::Number(0.0))
            } else {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                Ok(ReleaseValue::Number(v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64))
            }
        }
        AggregateFunction::ArgMax => {
            let col =
                agg.column.as_ref().ok_or_else(|| QueryError::Unsupported("ARGMAX needs a column".into()))?;
            let i = m.col_idx(col).ok_or_else(|| QueryError::UnknownColumn(col.clone()))?;
            let mut counts: Vec<(String, f64)> = Vec::new();
            for r in rows {
                let key = r[i].group_key();
                match counts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, c)) => *c += 1.0,
                    None => counts.push((key, 1.0)),
                }
            }
            Ok(ReleaseValue::Candidates(counts))
        }
    }
}

/// Execute a SELECT statement over the named base tables, producing one raw
/// release per aggregation per group.
pub fn execute_select(
    stmt: &SelectStatement,
    tables: &HashMap<String, Table>,
) -> Result<Vec<RawRelease>, QueryError> {
    let m = eval(&stmt.source, tables)?;
    let all_rows: Vec<&Vec<Value>> = m.rows.iter().collect();

    // Determine groups: `None` key means "the whole relation".
    let groups: Vec<(Option<String>, Vec<&Vec<Value>>)> = match &stmt.group_by {
        None => vec![(None, all_rows)],
        Some(GroupBy { column, keys }) => {
            let idx = m.col_idx(column).ok_or_else(|| QueryError::UnknownColumn(column.clone()))?;
            match keys {
                GroupKeys::Explicit(keys) => keys
                    .iter()
                    .map(|k| {
                        let key = k.group_key();
                        let rows = all_rows.iter().filter(|r| r[idx].group_key() == key).cloned().collect();
                        (Some(key), rows)
                    })
                    .collect(),
                GroupKeys::ChunkBins { bin_secs } => {
                    if column != CHUNK_COLUMN {
                        return Err(QueryError::Unsupported(
                            "chunk-bin grouping is only allowed on the implicit chunk column".into(),
                        ));
                    }
                    let mut bins: Vec<i64> = all_rows
                        .iter()
                        .filter_map(|r| r[idx].as_num())
                        .map(|c| (c / bin_secs).floor() as i64)
                        .collect();
                    bins.sort_unstable();
                    bins.dedup();
                    bins.into_iter()
                        .map(|b| {
                            let rows = all_rows
                                .iter()
                                .filter(|r| {
                                    r[idx].as_num().map(|c| (c / bin_secs).floor() as i64 == b).unwrap_or(false)
                                })
                                .cloned()
                                .collect();
                            (Some(format!("{}", b as f64 * bin_secs)), rows)
                        })
                        .collect()
                }
            }
        }
    };

    let mut releases = Vec::new();
    for agg in &stmt.aggregations {
        for (key, rows) in &groups {
            let value = aggregate(&m, rows, agg)?;
            let base = format!("{}({})", agg.function.keyword(), agg.column.clone().unwrap_or_else(|| "*".into()));
            let label = match (&stmt.group_by, key) {
                (Some(g), Some(k)) => format!("{base}[{}={}]", g.column, k),
                _ => base,
            };
            releases.push(RawRelease { label, group_key: key.clone(), value });
        }
    }
    Ok(releases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;
    use crate::schema::Schema;

    /// The highway table of Listing 1 with a handful of rows.
    fn listing1_tables() -> HashMap<String, Table> {
        let mut t = Table::new(Schema::listing1());
        let rows = [
            ("AAA", "RED", 45.0, 0.0),
            ("AAA", "RED", 50.0, 5.0),
            ("BBB", "WHITE", 55.0, 5.0),
            ("CCC", "SILVER", 70.0, 10.0),
            ("DDD", "RED", 20.0, 3600.0),
        ];
        for (plate, color, speed, chunk) in rows {
            t.append_chunk_output(chunk, 0, &[vec![Value::str(plate), Value::str(color), Value::num(speed)]], 10);
        }
        HashMap::from([("tableA".to_string(), t)])
    }

    #[test]
    fn avg_speed_with_range_truncation() {
        // Listing 1's S1: AVG(range(speed, 30, 60)). 70 clamps to 60, 20 to 30.
        let stmt = SelectStatement::simple(Aggregation::avg("speed", 30.0, 60.0), Relation::table("tableA"));
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 1);
        let expected = (45.0 + 50.0 + 55.0 + 60.0 + 30.0) / 5.0;
        assert_eq!(out[0].value, ReleaseValue::Number(expected));
        assert_eq!(out[0].label, "AVG(speed)");
    }

    #[test]
    fn count_grouped_by_color_with_explicit_keys() {
        // Listing 1's S2: per-colour count of unique plates.
        let stmt = SelectStatement::simple(
            Aggregation::count("plate"),
            Relation::table("tableA").distinct_on(vec!["plate"]),
        )
        .group_by_keys("color", vec![Value::str("RED"), Value::str("WHITE"), Value::str("SILVER")]);
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 3);
        let by_key: HashMap<_, _> =
            out.iter().map(|r| (r.group_key.clone().unwrap(), r.value.as_number().unwrap())).collect();
        assert_eq!(by_key["RED"], 2.0, "AAA (deduped) and DDD");
        assert_eq!(by_key["WHITE"], 1.0);
        assert_eq!(by_key["SILVER"], 1.0);
    }

    #[test]
    fn missing_group_key_yields_zero_not_absent() {
        let stmt = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_keys("color", vec![Value::str("BLUE")]);
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, ReleaseValue::Number(0.0), "explicit keys always produce a release");
    }

    #[test]
    fn filter_and_limit() {
        let stmt = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("tableA").filter(Predicate::EqStr("color".into(), "RED".into())).limit(2),
        );
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(2.0));
    }

    #[test]
    fn chunk_bin_grouping_counts_per_hour() {
        let stmt = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_chunk_bins(3600.0);
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 2, "rows fall in two hourly bins");
        assert_eq!(out[0].value, ReleaseValue::Number(4.0));
        assert_eq!(out[1].value, ReleaseValue::Number(1.0));
    }

    #[test]
    fn sum_and_var() {
        let tables = listing1_tables();
        let sum = SelectStatement::simple(Aggregation::sum("speed", 0.0, 100.0), Relation::table("tableA"));
        let out = execute_select(&sum, &tables).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(45.0 + 50.0 + 55.0 + 70.0 + 20.0));
        let var = SelectStatement::simple(Aggregation::var("speed", 0.0, 100.0), Relation::table("tableA"));
        let out = execute_select(&var, &tables).unwrap();
        let v = out[0].value.as_number().unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn argmax_returns_candidates() {
        let stmt = SelectStatement::simple(Aggregation::argmax("color"), Relation::table("tableA"));
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        match &out[0].value {
            ReleaseValue::Candidates(c) => {
                assert_eq!(c.len(), 3);
                let red = c.iter().find(|(k, _)| k == "RED").unwrap();
                assert_eq!(red.1, 3.0);
            }
            _ => panic!("expected candidates"),
        }
    }

    #[test]
    fn inner_join_intersects_on_key() {
        let mut t1 = Table::new(Schema::new(vec![crate::schema::ColumnDef::string("plate", "")]).unwrap());
        let mut t2 = Table::new(Schema::new(vec![crate::schema::ColumnDef::string("plate", "")]).unwrap());
        for p in ["A", "B", "C"] {
            t1.append_chunk_output(0.0, 0, &[vec![Value::str(p)]], 10);
        }
        for p in ["B", "C", "D"] {
            t2.append_chunk_output(0.0, 0, &[vec![Value::str(p)]], 10);
        }
        let tables = HashMap::from([("t1".to_string(), t1), ("t2".to_string(), t2)]);
        let stmt = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("t1").join(Relation::table("t2"), vec!["plate"], JoinKind::Inner),
        );
        let out = execute_select(&stmt, &tables).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(2.0), "B and C appear in both");
        let union = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("t1")
                .join(Relation::table("t2"), vec!["plate"], JoinKind::Outer)
                .distinct_on(vec!["plate"]),
        );
        let out = execute_select(&union, &tables).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(4.0), "A, B, C, D");
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let tables = listing1_tables();
        let bad_table = SelectStatement::simple(Aggregation::count_star(), Relation::table("nope"));
        assert!(matches!(execute_select(&bad_table, &tables), Err(QueryError::UnknownTable(_))));
        let bad_col = SelectStatement::simple(Aggregation::sum("altitude", 0.0, 1.0), Relation::table("tableA"));
        assert!(matches!(execute_select(&bad_col, &tables), Err(QueryError::UnknownColumn(_))));
        let bad_filter = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("tableA").filter(Predicate::EqStr("ghost".into(), "x".into())),
        );
        assert!(matches!(execute_select(&bad_filter, &tables), Err(QueryError::UnknownColumn(_))));
    }

    #[test]
    fn projection_drops_columns() {
        let stmt = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("tableA").project(vec!["plate", "color"]),
        );
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(5.0));
        // Aggregating a projected-away column errors.
        let bad = SelectStatement::simple(
            Aggregation::avg("speed", 0.0, 100.0),
            Relation::table("tableA").project(vec!["plate"]),
        );
        assert!(execute_select(&bad, &listing1_tables()).is_err());
    }
}
