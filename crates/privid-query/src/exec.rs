//! Execution of SELECT statements over intermediate tables.
//!
//! The executor computes *raw* (pre-noise) release values. Privid never shows
//! these to the analyst: `privid-core` adds Laplace noise calibrated by the
//! sensitivity calculator before anything leaves the system. Keeping the two
//! concerns separate makes it possible to test the aggregation semantics
//! exactly and the privacy mechanism statistically.
//!
//! Two execution paths produce bit-identical releases:
//!
//! - [`execute_select`] is the reference path: it materializes the relation
//!   row by row (JOIN / GROUP BY / DISTINCT / LIMIT all live here) and feeds
//!   each aggregation an [`AggState`] by sequential observation.
//! - [`FoldableSelect`] is the incremental path: for aggregate-only plans
//!   (filters, projections and range constraints over a single base table) it
//!   compiles the statement once and folds table rows directly from the
//!   columnar storage — no per-row materialization — producing the exact same
//!   sequence of floating-point operations as the reference path.

use crate::aggstate::AggState;
use crate::ast::{
    AggregateFunction, Aggregation, GroupBy, GroupKeys, JoinKind, Predicate, Relation, SelectStatement,
};
use crate::error::QueryError;
use crate::schema::{Schema, CHUNK_COLUMN, REGION_COLUMN};
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::HashMap;

/// The raw value of one data release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReleaseValue {
    /// A numeric aggregate (COUNT / SUM / AVG / VAR). Noise is added directly.
    Number(f64),
    /// ARGMAX candidates: per-key counts, in sorted key order. `privid-core`
    /// adds independent noise to every count and releases only the winning
    /// key (report-noisy-max).
    Candidates(Vec<(String, f64)>),
}

impl ReleaseValue {
    /// The numeric content, if this is a plain number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ReleaseValue::Number(n) => Some(*n),
            ReleaseValue::Candidates(_) => None,
        }
    }
}

/// One raw data release: a label describing which aggregation / group key it
/// belongs to, and its value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawRelease {
    /// Human-readable label, e.g. `AVG(speed)` or `COUNT(plate)[color=RED]`.
    pub label: String,
    /// The group key, if this release belongs to a GROUP BY bucket.
    pub group_key: Option<String>,
    /// The raw value.
    pub value: ReleaseValue,
}

/// A relation materialized into named columns and rows.
#[derive(Debug, Clone, PartialEq)]
struct Materialized {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Materialized {
    fn col_idx(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    fn get(&self, row: &[Value], name: &str) -> Option<Value> {
        self.col_idx(name).and_then(|i| row.get(i).cloned())
    }

    fn from_table(table: &Table) -> Materialized {
        let mut columns: Vec<String> = table.schema.columns.iter().map(|c| c.name.clone()).collect();
        columns.push(CHUNK_COLUMN.to_string());
        columns.push(REGION_COLUMN.to_string());
        let chunk = table.chunk_starts();
        let region = table.regions();
        let rows = (0..table.len())
            .map(|r| {
                let mut v: Vec<Value> = table
                    .columns()
                    .iter()
                    .map(|c| c.value(r).expect("column vectors are row-aligned"))
                    .collect();
                v.push(Value::Num(chunk[r]));
                v.push(Value::Num(region[r] as f64));
                v
            })
            .collect();
        Materialized { columns, rows }
    }
}

/// Evaluate an inner relation against the named base tables.
fn eval<T: Borrow<Table>>(rel: &Relation, tables: &HashMap<String, T>) -> Result<Materialized, QueryError> {
    match rel {
        Relation::Table(name) => tables
            .get(name)
            .map(|t| Materialized::from_table(t.borrow()))
            .ok_or_else(|| QueryError::UnknownTable(name.clone())),
        Relation::Filter { input, predicate } => {
            let m = eval(input, tables)?;
            for col in predicate.columns() {
                if m.col_idx(&col).is_none() {
                    return Err(QueryError::UnknownColumn(col));
                }
            }
            let rows = m
                .rows
                .iter()
                .filter(|row| predicate.eval(&|c: &str| m.get(row, c)))
                .cloned()
                .collect();
            Ok(Materialized { columns: m.columns.clone(), rows })
        }
        Relation::Limit { input, limit } => {
            let mut m = eval(input, tables)?;
            m.rows.truncate(*limit);
            Ok(m)
        }
        Relation::Project { input, columns } => {
            let m = eval(input, tables)?;
            let mut idx = Vec::with_capacity(columns.len());
            for c in columns {
                idx.push(m.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone()))?);
            }
            let rows = m.rows.iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect()).collect();
            Ok(Materialized { columns: columns.clone(), rows })
        }
        Relation::RangeConstraint { input, column, lo, hi } => {
            let m = eval(input, tables)?;
            let i = m.col_idx(column).ok_or_else(|| QueryError::UnknownColumn(column.clone()))?;
            let rows = m
                .rows
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    if let Value::Num(n) = r[i] {
                        r[i] = Value::Num(n.clamp(*lo, *hi));
                    }
                    r
                })
                .collect();
            Ok(Materialized { columns: m.columns.clone(), rows })
        }
        Relation::Distinct { input, columns } => {
            let m = eval(input, tables)?;
            let mut idx = Vec::with_capacity(columns.len());
            for c in columns {
                idx.push(m.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone()))?);
            }
            let mut seen = std::collections::HashSet::new();
            let rows = m
                .rows
                .iter()
                .filter(|r| {
                    let key: Vec<String> = idx.iter().map(|&i| r[i].group_key()).collect();
                    seen.insert(key)
                })
                .cloned()
                .collect();
            Ok(Materialized { columns: m.columns.clone(), rows })
        }
        Relation::Join { left, right, on, kind } => {
            let l = eval(left, tables)?;
            let r = eval(right, tables)?;
            let l_idx: Vec<usize> = on
                .iter()
                .map(|c| l.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                .collect::<Result<_, _>>()?;
            let r_idx: Vec<usize> = on
                .iter()
                .map(|c| r.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                .collect::<Result<_, _>>()?;
            match kind {
                JoinKind::Inner => {
                    // Output: join keys, then non-key columns of the left, then
                    // non-key columns of the right not already named.
                    let mut columns: Vec<String> = on.clone();
                    let l_extra: Vec<usize> =
                        (0..l.columns.len()).filter(|i| !l_idx.contains(i)).collect();
                    for &i in &l_extra {
                        columns.push(l.columns[i].clone());
                    }
                    let r_extra: Vec<usize> = (0..r.columns.len())
                        .filter(|i| !r_idx.contains(i) && !columns.contains(&r.columns[*i]))
                        .collect();
                    for &i in &r_extra {
                        columns.push(r.columns[i].clone());
                    }
                    let mut by_key: HashMap<Vec<String>, Vec<&Vec<Value>>> = HashMap::new();
                    for row in &r.rows {
                        let key: Vec<String> = r_idx.iter().map(|&i| row[i].group_key()).collect();
                        by_key.entry(key).or_default().push(row);
                    }
                    let mut rows = Vec::new();
                    for lrow in &l.rows {
                        let key: Vec<String> = l_idx.iter().map(|&i| lrow[i].group_key()).collect();
                        if let Some(matches) = by_key.get(&key) {
                            for rrow in matches {
                                let mut out: Vec<Value> = l_idx.iter().map(|&i| lrow[i].clone()).collect();
                                out.extend(l_extra.iter().map(|&i| lrow[i].clone()));
                                out.extend(r_extra.iter().map(|&i| rrow[i].clone()));
                                rows.push(out);
                            }
                        }
                    }
                    Ok(Materialized { columns, rows })
                }
                JoinKind::Outer => {
                    // Union on the key columns plus every column present in
                    // both inputs: concatenate the rows of both sides.
                    let shared: Vec<String> =
                        l.columns.iter().filter(|c| r.col_idx(c).is_some()).cloned().collect();
                    let mut columns = on.clone();
                    for c in &shared {
                        if !columns.contains(c) {
                            columns.push(c.clone());
                        }
                    }
                    let project = |m: &Materialized| -> Result<Vec<Vec<Value>>, QueryError> {
                        let idx: Vec<usize> = columns
                            .iter()
                            .map(|c| m.col_idx(c).ok_or_else(|| QueryError::UnknownColumn(c.clone())))
                            .collect::<Result<_, _>>()?;
                        Ok(m.rows.iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect()).collect())
                    };
                    let mut rows = project(&l)?;
                    rows.extend(project(&r)?);
                    Ok(Materialized { columns, rows })
                }
            }
        }
    }
}

/// Compute one aggregation over a set of rows by sequential observation of an
/// [`AggState`] — the same state machine the incremental fold path uses, so
/// the two paths agree bit for bit.
fn aggregate(m: &Materialized, rows: &[&Vec<Value>], agg: &Aggregation) -> Result<ReleaseValue, QueryError> {
    let idx: Option<usize> = match agg.function {
        AggregateFunction::Count => {
            if let Some(col) = &agg.column {
                if m.col_idx(col).is_none() {
                    return Err(QueryError::UnknownColumn(col.clone()));
                }
            }
            // COUNT releases the surviving row count; the cell is irrelevant.
            None
        }
        AggregateFunction::Sum
        | AggregateFunction::Avg
        | AggregateFunction::Var
        | AggregateFunction::ArgMax => {
            let col = agg.column.as_ref().ok_or_else(|| {
                QueryError::Unsupported(format!("{} needs a column", agg.function.keyword()))
            })?;
            Some(m.col_idx(col).ok_or_else(|| QueryError::UnknownColumn(col.clone()))?)
        }
    };
    let mut state = AggState::identity(agg.function);
    for r in rows {
        state.observe(idx.map(|i| &r[i]), agg.range);
    }
    Ok(state.release())
}

/// Execute a SELECT statement over the named base tables, producing one raw
/// release per aggregation per group. Generic over `Arc<Table>` / `Table`
/// values so shared (cached) tables execute without a copy.
pub fn execute_select<T: Borrow<Table>>(
    stmt: &SelectStatement,
    tables: &HashMap<String, T>,
) -> Result<Vec<RawRelease>, QueryError> {
    let m = eval(&stmt.source, tables)?;
    let all_rows: Vec<&Vec<Value>> = m.rows.iter().collect();

    // Determine groups: `None` key means "the whole relation".
    let groups: Vec<(Option<String>, Vec<&Vec<Value>>)> = match &stmt.group_by {
        None => vec![(None, all_rows)],
        Some(GroupBy { column, keys }) => {
            let idx = m.col_idx(column).ok_or_else(|| QueryError::UnknownColumn(column.clone()))?;
            match keys {
                GroupKeys::Explicit(keys) => keys
                    .iter()
                    .map(|k| {
                        let key = k.group_key();
                        let rows = all_rows.iter().filter(|r| r[idx].group_key() == key).cloned().collect();
                        (Some(key), rows)
                    })
                    .collect(),
                GroupKeys::ChunkBins { bin_secs } => {
                    if column != CHUNK_COLUMN {
                        return Err(QueryError::Unsupported(
                            "chunk-bin grouping is only allowed on the implicit chunk column".into(),
                        ));
                    }
                    let mut bins: Vec<i64> = all_rows
                        .iter()
                        .filter_map(|r| r[idx].as_num())
                        .map(|c| (c / bin_secs).floor() as i64)
                        .collect();
                    bins.sort_unstable();
                    bins.dedup();
                    bins.into_iter()
                        .map(|b| {
                            let rows = all_rows
                                .iter()
                                .filter(|r| {
                                    r[idx].as_num().map(|c| (c / bin_secs).floor() as i64 == b).unwrap_or(false)
                                })
                                .cloned()
                                .collect();
                            (Some(format!("{}", b as f64 * bin_secs)), rows)
                        })
                        .collect()
                }
            }
        }
    };

    let mut releases = Vec::new();
    for agg in &stmt.aggregations {
        for (key, rows) in &groups {
            let value = aggregate(&m, rows, agg)?;
            let base = format!("{}({})", agg.function.keyword(), agg.column.clone().unwrap_or_else(|| "*".into()));
            let label = match (&stmt.group_by, key) {
                (Some(g), Some(k)) => format!("{base}[{}={}]", g.column, k),
                _ => base,
            };
            releases.push(RawRelease { label, group_key: key.clone(), value });
        }
    }
    Ok(releases)
}

/// A column reference resolved against the base table's schema: either one of
/// the analyst columns or a trusted implicit column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColRef {
    Schema(usize),
    Chunk,
    Region,
}

/// One compiled per-row transformation of a foldable plan, in application
/// order (innermost relation first).
#[derive(Debug, Clone)]
enum FoldOp {
    /// `range(col, lo, hi)`: clamp the column's numeric value for every
    /// later op and for the aggregations.
    Clamp { col: ColRef, lo: f64, hi: f64 },
    /// `WHERE predicate`: drop rows that fail, evaluated over the columns'
    /// current (possibly clamped) values.
    Filter { predicate: Predicate, cols: Vec<(String, ColRef)> },
}

/// An aggregate-only SELECT compiled for incremental folding.
///
/// [`FoldableSelect::compile`] returns `Some` only for plans the fold path
/// can reproduce bit for bit: no GROUP BY, a single base table, and a
/// relation tree of filters / projections / range constraints only — and
/// only when the plan passes the same validation the reference path performs
/// (unknown columns, missing aggregation columns). Anything else returns
/// `None`, and the caller falls back to [`execute_select`], which surfaces
/// the identical error at the identical pipeline point. Over-strict
/// compilation is therefore safe; under-strict would be a bug.
///
/// Folding observes surviving rows in table row order, so extending a prefix
/// state over chunks `0..k` with the rows of chunks `k..n` performs exactly
/// the floating-point op sequence of a from-scratch aggregation over
/// `0..n` — see the [`crate::aggstate`] module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct FoldableSelect {
    table: String,
    schema_len: usize,
    ops: Vec<FoldOp>,
    aggs: Vec<(Aggregation, Option<ColRef>)>,
    labels: Vec<String>,
    fingerprint: String,
}

impl FoldableSelect {
    /// Compile a statement against the base table's schema, or `None` if the
    /// plan (or its validity) is outside the foldable subset.
    pub fn compile(stmt: &SelectStatement, schema: &Schema) -> Option<FoldableSelect> {
        if stmt.group_by.is_some() || stmt.aggregations.is_empty() {
            return None;
        }
        // Walk to the base table, collecting the op chain innermost-first.
        let mut chain: Vec<&Relation> = Vec::new();
        let mut rel = &stmt.source;
        let table = loop {
            match rel {
                Relation::Table(name) => break name.clone(),
                Relation::Filter { input, .. }
                | Relation::Project { input, .. }
                | Relation::RangeConstraint { input, .. } => {
                    chain.push(rel);
                    rel = input;
                }
                _ => return None,
            }
        };
        chain.reverse();

        let resolve = |name: &str| -> Option<ColRef> {
            match name {
                CHUNK_COLUMN => Some(ColRef::Chunk),
                REGION_COLUMN => Some(ColRef::Region),
                _ => schema.column_index(name).map(ColRef::Schema),
            }
        };
        // Column visibility mirrors the reference path: projections narrow
        // the set, and any later reference to a dropped column makes the plan
        // non-foldable (the reference path raises UnknownColumn there).
        let mut visible: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        visible.push(CHUNK_COLUMN.to_string());
        visible.push(REGION_COLUMN.to_string());

        let mut ops = Vec::new();
        for node in chain {
            match node {
                Relation::Filter { predicate, .. } => {
                    let mut cols = Vec::new();
                    for c in predicate.columns() {
                        if !visible.contains(&c) {
                            return None;
                        }
                        let r = resolve(&c)?;
                        cols.push((c, r));
                    }
                    ops.push(FoldOp::Filter { predicate: predicate.clone(), cols });
                }
                Relation::Project { columns, .. } => {
                    if columns.iter().any(|c| !visible.contains(c)) {
                        return None;
                    }
                    visible = columns.clone();
                }
                Relation::RangeConstraint { column, lo, hi, .. } => {
                    if !visible.contains(column) {
                        return None;
                    }
                    ops.push(FoldOp::Clamp { col: resolve(column)?, lo: *lo, hi: *hi });
                }
                _ => return None,
            }
        }

        let mut aggs = Vec::new();
        let mut labels = Vec::new();
        for agg in &stmt.aggregations {
            let col_ref = match (agg.function, &agg.column) {
                (AggregateFunction::Count, Some(c)) => {
                    if !visible.contains(c) {
                        return None;
                    }
                    None // COUNT ignores the cell; existence is all that matters.
                }
                (AggregateFunction::Count, None) => None,
                (_, None) => return None, // reference path raises Unsupported
                (_, Some(c)) => {
                    if !visible.contains(c) {
                        return None;
                    }
                    Some(resolve(c)?)
                }
            };
            labels.push(format!(
                "{}({})",
                agg.function.keyword(),
                agg.column.clone().unwrap_or_else(|| "*".into())
            ));
            aggs.push((agg.clone(), col_ref));
        }

        Some(FoldableSelect {
            table,
            schema_len: schema.len(),
            ops,
            aggs,
            labels,
            fingerprint: format!("{:?}|{:?}", stmt.source, stmt.aggregations),
        })
    }

    /// The single base table this plan reads.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// A deterministic fingerprint of (relation tree, aggregations) — the
    /// cache key component identifying "the same sub-plan" across analysts.
    /// Epsilon is deliberately excluded: ε is checked and debited per admitted
    /// query by the admission gate, never by the cache.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Fresh identity states, one per aggregation of the statement.
    pub fn identity(&self) -> Vec<AggState> {
        self.aggs.iter().map(|(agg, _)| AggState::identity(agg.function)).collect()
    }

    /// Fold the rows `range` of `table` (which must have the schema this plan
    /// was compiled against) into `states`, observing surviving rows in row
    /// order.
    pub fn fold_range(&self, table: &Table, range: std::ops::Range<usize>, states: &mut [AggState]) {
        debug_assert_eq!(states.len(), self.aggs.len(), "one state per aggregation");
        debug_assert_eq!(table.schema.len(), self.schema_len, "fold table must match the compiled schema");
        let n = self.schema_len;
        // Per-row numeric overrides from range constraints: index i < n is
        // schema column i, n is the chunk column, n+1 the region column.
        let mut scratch: Vec<Option<f64>> = vec![None; n + 2];
        let end = range.end.min(table.len());
        for row in range.start..end {
            for s in scratch.iter_mut() {
                *s = None;
            }
            let mut keep = true;
            for op in &self.ops {
                match op {
                    FoldOp::Clamp { col, lo, hi } => {
                        let i = scratch_index(col, n);
                        // Str cells pass through unclamped, exactly like the
                        // reference path's `if let Value::Num` arm.
                        if let Some(x) = scratch[i].or_else(|| raw_num(table, row, col)) {
                            scratch[i] = Some(x.clamp(*lo, *hi));
                        }
                    }
                    FoldOp::Filter { predicate, cols } => {
                        let lookup = |name: &str| -> Option<Value> {
                            cols.iter()
                                .find(|(c, _)| c == name)
                                .and_then(|(_, r)| effective(table, row, r, &scratch, n))
                        };
                        if !predicate.eval(&lookup) {
                            keep = false;
                            break;
                        }
                    }
                }
            }
            if !keep {
                continue;
            }
            for ((agg, col_ref), state) in self.aggs.iter().zip(states.iter_mut()) {
                let cell = col_ref.as_ref().and_then(|r| effective(table, row, r, &scratch, n));
                state.observe(cell.as_ref(), agg.range);
            }
        }
    }

    /// Assemble the raw releases from folded states, with the same labels the
    /// reference path produces.
    pub fn release(&self, states: &[AggState]) -> Vec<RawRelease> {
        debug_assert_eq!(states.len(), self.labels.len());
        self.labels
            .iter()
            .zip(states.iter())
            .map(|(label, state)| RawRelease { label: label.clone(), group_key: None, value: state.release() })
            .collect()
    }
}

fn scratch_index(col: &ColRef, schema_len: usize) -> usize {
    match col {
        ColRef::Schema(i) => *i,
        ColRef::Chunk => schema_len,
        ColRef::Region => schema_len + 1,
    }
}

fn raw_num(table: &Table, row: usize, col: &ColRef) -> Option<f64> {
    match col {
        ColRef::Schema(i) => table.columns()[*i].num(row),
        ColRef::Chunk => Some(table.chunk_starts()[row]),
        ColRef::Region => Some(table.regions()[row] as f64),
    }
}

fn effective(table: &Table, row: usize, col: &ColRef, scratch: &[Option<f64>], schema_len: usize) -> Option<Value> {
    if let Some(x) = scratch[scratch_index(col, schema_len)] {
        return Some(Value::Num(x));
    }
    match col {
        ColRef::Schema(i) => table.columns()[*i].value(row),
        ColRef::Chunk => Some(Value::Num(table.chunk_starts()[row])),
        ColRef::Region => Some(Value::Num(table.regions()[row] as f64)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;
    use crate::schema::Schema;

    /// The highway table of Listing 1 with a handful of rows.
    fn listing1_tables() -> HashMap<String, Table> {
        let mut t = Table::new(Schema::listing1());
        let rows = [
            ("AAA", "RED", 45.0, 0.0),
            ("AAA", "RED", 50.0, 5.0),
            ("BBB", "WHITE", 55.0, 5.0),
            ("CCC", "SILVER", 70.0, 10.0),
            ("DDD", "RED", 20.0, 3600.0),
        ];
        for (plate, color, speed, chunk) in rows {
            t.append_chunk_output(chunk, 0, &[vec![Value::str(plate), Value::str(color), Value::num(speed)]], 10);
        }
        HashMap::from([("tableA".to_string(), t)])
    }

    #[test]
    fn avg_speed_with_range_truncation() {
        // Listing 1's S1: AVG(range(speed, 30, 60)). 70 clamps to 60, 20 to 30.
        let stmt = SelectStatement::simple(Aggregation::avg("speed", 30.0, 60.0), Relation::table("tableA"));
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 1);
        let expected = (45.0 + 50.0 + 55.0 + 60.0 + 30.0) / 5.0;
        assert_eq!(out[0].value, ReleaseValue::Number(expected));
        assert_eq!(out[0].label, "AVG(speed)");
    }

    #[test]
    fn count_grouped_by_color_with_explicit_keys() {
        // Listing 1's S2: per-colour count of unique plates.
        let stmt = SelectStatement::simple(
            Aggregation::count("plate"),
            Relation::table("tableA").distinct_on(vec!["plate"]),
        )
        .group_by_keys("color", vec![Value::str("RED"), Value::str("WHITE"), Value::str("SILVER")]);
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 3);
        let by_key: HashMap<_, _> =
            out.iter().map(|r| (r.group_key.clone().unwrap(), r.value.as_number().unwrap())).collect();
        assert_eq!(by_key["RED"], 2.0, "AAA (deduped) and DDD");
        assert_eq!(by_key["WHITE"], 1.0);
        assert_eq!(by_key["SILVER"], 1.0);
    }

    #[test]
    fn missing_group_key_yields_zero_not_absent() {
        let stmt = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_keys("color", vec![Value::str("BLUE")]);
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, ReleaseValue::Number(0.0), "explicit keys always produce a release");
    }

    #[test]
    fn filter_and_limit() {
        let stmt = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("tableA").filter(Predicate::EqStr("color".into(), "RED".into())).limit(2),
        );
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(2.0));
    }

    #[test]
    fn chunk_bin_grouping_counts_per_hour() {
        let stmt = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_chunk_bins(3600.0);
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out.len(), 2, "rows fall in two hourly bins");
        assert_eq!(out[0].value, ReleaseValue::Number(4.0));
        assert_eq!(out[1].value, ReleaseValue::Number(1.0));
    }

    #[test]
    fn sum_and_var() {
        let tables = listing1_tables();
        let sum = SelectStatement::simple(Aggregation::sum("speed", 0.0, 100.0), Relation::table("tableA"));
        let out = execute_select(&sum, &tables).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(45.0 + 50.0 + 55.0 + 70.0 + 20.0));
        let var = SelectStatement::simple(Aggregation::var("speed", 0.0, 100.0), Relation::table("tableA"));
        let out = execute_select(&var, &tables).unwrap();
        let v = out[0].value.as_number().unwrap();
        assert!(v > 0.0);
    }

    #[test]
    fn argmax_returns_candidates() {
        let stmt = SelectStatement::simple(Aggregation::argmax("color"), Relation::table("tableA"));
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        match &out[0].value {
            ReleaseValue::Candidates(c) => {
                assert_eq!(c.len(), 3);
                let red = c.iter().find(|(k, _)| k == "RED").unwrap();
                assert_eq!(red.1, 3.0);
            }
            _ => panic!("expected candidates"),
        }
    }

    #[test]
    fn argmax_many_keys_is_sorted_and_exact() {
        // Regression test for the old O(n²) `iter_mut().find` accumulation:
        // many distinct keys, exact counts, candidates in sorted key order —
        // the same deterministic order report_noisy_max breaks ties with.
        let mut t = Table::new(Schema::new(vec![crate::schema::ColumnDef::string("plate", "")]).unwrap());
        let n_keys = 500;
        for rep in 0..3 {
            for k in 0..n_keys {
                if k % 3 < rep {
                    // key k appears (k % 3) + 1 times overall
                    continue;
                }
                t.append_chunk_output(0.0, 0, &[vec![Value::str(format!("P{k:04}"))]], usize::MAX);
            }
        }
        let tables = HashMap::from([("t".to_string(), t)]);
        let stmt = SelectStatement::simple(Aggregation::argmax("plate"), Relation::table("t"));
        let out = execute_select(&stmt, &tables).unwrap();
        match &out[0].value {
            ReleaseValue::Candidates(c) => {
                assert_eq!(c.len(), n_keys);
                let mut sorted = c.clone();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                assert_eq!(*c, sorted, "candidates must enumerate in sorted key order");
                for (key, count) in c {
                    let k: usize = key[1..].parse().unwrap();
                    assert_eq!(*count, ((k % 3) + 1) as f64, "exact count for {key}");
                }
            }
            _ => panic!("expected candidates"),
        }
    }

    #[test]
    fn inner_join_intersects_on_key() {
        let mut t1 = Table::new(Schema::new(vec![crate::schema::ColumnDef::string("plate", "")]).unwrap());
        let mut t2 = Table::new(Schema::new(vec![crate::schema::ColumnDef::string("plate", "")]).unwrap());
        for p in ["A", "B", "C"] {
            t1.append_chunk_output(0.0, 0, &[vec![Value::str(p)]], 10);
        }
        for p in ["B", "C", "D"] {
            t2.append_chunk_output(0.0, 0, &[vec![Value::str(p)]], 10);
        }
        let tables = HashMap::from([("t1".to_string(), t1), ("t2".to_string(), t2)]);
        let stmt = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("t1").join(Relation::table("t2"), vec!["plate"], JoinKind::Inner),
        );
        let out = execute_select(&stmt, &tables).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(2.0), "B and C appear in both");
        let union = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("t1")
                .join(Relation::table("t2"), vec!["plate"], JoinKind::Outer)
                .distinct_on(vec!["plate"]),
        );
        let out = execute_select(&union, &tables).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(4.0), "A, B, C, D");
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let tables = listing1_tables();
        let bad_table = SelectStatement::simple(Aggregation::count_star(), Relation::table("nope"));
        assert!(matches!(execute_select(&bad_table, &tables), Err(QueryError::UnknownTable(_))));
        let bad_col = SelectStatement::simple(Aggregation::sum("altitude", 0.0, 1.0), Relation::table("tableA"));
        assert!(matches!(execute_select(&bad_col, &tables), Err(QueryError::UnknownColumn(_))));
        let bad_filter = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("tableA").filter(Predicate::EqStr("ghost".into(), "x".into())),
        );
        assert!(matches!(execute_select(&bad_filter, &tables), Err(QueryError::UnknownColumn(_))));
    }

    #[test]
    fn projection_drops_columns() {
        let stmt = SelectStatement::simple(
            Aggregation::count_star(),
            Relation::table("tableA").project(vec!["plate", "color"]),
        );
        let out = execute_select(&stmt, &listing1_tables()).unwrap();
        assert_eq!(out[0].value, ReleaseValue::Number(5.0));
        // Aggregating a projected-away column errors.
        let bad = SelectStatement::simple(
            Aggregation::avg("speed", 0.0, 100.0),
            Relation::table("tableA").project(vec!["plate"]),
        );
        assert!(execute_select(&bad, &listing1_tables()).is_err());
    }

    /// Every statement the fold path accepts must release bit-identically to
    /// the reference path — including filters interleaved with clamps, and
    /// prefix extension across chunk boundaries.
    #[test]
    fn foldable_plans_match_the_reference_path_bitwise() {
        let mut t = Table::new(Schema::listing1());
        let colors = ["RED", "WHITE", "SILVER", "RED"];
        for chunk in 0..7 {
            let rows: Vec<Vec<Value>> = (0..chunk + 1)
                .map(|i| {
                    vec![
                        Value::str(format!("P{chunk}{i}")),
                        Value::str(colors[(chunk + i) % colors.len()]),
                        Value::num(1e14 / (chunk as f64 + i as f64 + 2.0)),
                    ]
                })
                .collect();
            t.append_chunk_output(chunk as f64 * 10.0, (chunk % 2) as u32, &rows, 10);
        }
        let tables = HashMap::from([("tableA".to_string(), t)]);
        let table = &tables["tableA"];

        let stmts = vec![
            SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA")),
            SelectStatement::simple(Aggregation::avg("speed", 0.0, 1e13), Relation::table("tableA")),
            SelectStatement::simple(Aggregation::var("speed", 0.0, 1e15), Relation::table("tableA")),
            SelectStatement::simple(
                Aggregation::sum("speed", 0.0, 1e15),
                Relation::table("tableA")
                    .with_range("speed", 0.0, 5e13)
                    .filter(Predicate::EqStr("color".into(), "RED".into())),
            ),
            SelectStatement::simple(Aggregation::argmax("color"), Relation::table("tableA")),
            SelectStatement::simple(
                Aggregation::count("plate"),
                Relation::table("tableA")
                    .filter(Predicate::Ge("chunk".into(), 20.0))
                    .project(vec!["plate", "chunk"]),
            ),
        ];
        for stmt in &stmts {
            let reference = execute_select(stmt, &tables).unwrap();
            let plan = FoldableSelect::compile(stmt, &table.schema)
                .unwrap_or_else(|| panic!("plan should be foldable: {stmt:?}"));
            // Whole-table fold.
            let mut states = plan.identity();
            plan.fold_range(table, 0..table.len(), &mut states);
            assert_eq!(plan.release(&states), reference);
            // Prefix extension chunk by chunk must hit the same bits.
            let mut states = plan.identity();
            for c in table.chunk_rows() {
                plan.fold_range(table, c.start..c.end, &mut states);
            }
            assert_eq!(plan.release(&states), reference);
        }
    }

    #[test]
    fn non_foldable_plans_are_rejected() {
        let schema = Schema::listing1();
        let grouped = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_keys("color", vec![Value::str("RED")]);
        assert!(FoldableSelect::compile(&grouped, &schema).is_none(), "GROUP BY needs rows");
        let distinct = SelectStatement::simple(
            Aggregation::count("plate"),
            Relation::table("tableA").distinct_on(vec!["plate"]),
        );
        assert!(FoldableSelect::compile(&distinct, &schema).is_none(), "DISTINCT is stateful");
        let limited =
            SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA").limit(3));
        assert!(FoldableSelect::compile(&limited, &schema).is_none(), "LIMIT is stateful");
        let bad_col =
            SelectStatement::simple(Aggregation::sum("altitude", 0.0, 1.0), Relation::table("tableA"));
        assert!(FoldableSelect::compile(&bad_col, &schema).is_none(), "invalid plans fall back");
        let dropped = SelectStatement::simple(
            Aggregation::avg("speed", 0.0, 100.0),
            Relation::table("tableA").project(vec!["plate"]),
        );
        assert!(FoldableSelect::compile(&dropped, &schema).is_none(), "projected-away column");
    }
}
