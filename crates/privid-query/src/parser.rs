//! Parser for the Privid query language (Appendix D, Listing 1).
//!
//! A query is a sequence of `SPLIT`, `PROCESS` and `SELECT` statements
//! terminated by semicolons. The parser produces the same typed AST the
//! builder API produces, so textual and programmatic queries go through
//! identical validation, execution and sensitivity analysis.
//!
//! Differences from the paper's grammar are minor and documented: `BEGIN` /
//! `END` take time offsets in seconds (with optional `sec` / `min` / `hr`
//! suffix) rather than calendar dates, and the chunk-time grouping helper is
//! written `GROUP BY chunk BIN <seconds>` rather than `hour(chunk)`.

use crate::ast::{
    AggregateFunction, Aggregation, GroupBy, GroupKeys, JoinKind, Predicate, Relation, SelectStatement,
};
use crate::error::QueryError;
use crate::schema::{ColumnDef, DataType, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A parsed `SPLIT ... INTO chunks` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitStatement {
    /// Camera identifier.
    pub camera: String,
    /// Window start, seconds from the start of the recording.
    pub begin_secs: f64,
    /// Window end, seconds from the start of the recording.
    pub end_secs: f64,
    /// Chunk duration in seconds.
    pub chunk_secs: f64,
    /// Stride between chunks in seconds.
    pub stride_secs: f64,
    /// Optional video-owner mask id (`WITH MASK <id>`).
    pub mask: Option<String>,
    /// Optional spatial-split scheme id (`BY REGION <id>`).
    pub region_scheme: Option<String>,
    /// Name the chunk set is bound to.
    pub output: String,
}

/// A parsed `PROCESS ... INTO table` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessStatement {
    /// Name of the chunk set consumed.
    pub input: String,
    /// Name of the analyst-supplied executable.
    pub executable: String,
    /// Per-chunk processing timeout in seconds.
    pub timeout_secs: f64,
    /// Maximum rows each chunk may contribute.
    pub max_rows: usize,
    /// Declared output schema.
    pub schema: Schema,
    /// Name the intermediate table is bound to.
    pub output: String,
}

/// A fully parsed query: any number of each statement kind, in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedQuery {
    /// SPLIT statements.
    pub splits: Vec<SplitStatement>,
    /// PROCESS statements.
    pub processes: Vec<ProcessStatement>,
    /// SELECT statements.
    pub selects: Vec<SelectStatement>,
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Num(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Star,
    Eq,
    Ne,
    Ge,
    Le,
}

fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                // Block comment.
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    i += 1;
                }
                i = (i + 2).min(chars.len());
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '>' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                tokens.push(Token::Ge);
                i += 2;
            }
            '<' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                tokens.push(Token::Le);
                i += 2;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(QueryError::Parse("unterminated string literal".into()));
                }
                i += 1;
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || (c == '-' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit()) => {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 =
                    text.parse().map_err(|_| QueryError::Parse(format!("invalid number literal '{text}'")))?;
                tokens.push(Token::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(QueryError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum nesting depth of parenthesized subqueries / joined sources. The
/// parser faces attacker-controlled bytes over the wire: recursion must be
/// bounded by a typed error, never by the thread's stack.
const MAX_SOURCE_DEPTH: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current `source()` recursion depth (every mutually-recursive cycle
    /// with `inner_select()` passes through `source()`).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), QueryError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            other => Err(QueryError::Parse(format!("expected {t:?}, found {other:?}"))),
        }
    }

    /// Consume an identifier and return it.
    fn ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Consume a keyword (case-insensitive identifier match).
    fn keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(QueryError::Parse(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    /// True if the next token is the given keyword (without consuming it).
    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn number(&mut self) -> Result<f64, QueryError> {
        match self.next() {
            // `1e999` parses to +inf: every numeric literal must be finite
            // before it can reach sensitivity or budget arithmetic.
            Some(Token::Num(n)) if n.is_finite() => Ok(n),
            Some(Token::Num(n)) => Err(QueryError::Parse(format!("numeric literal {n} is not finite"))),
            other => Err(QueryError::Parse(format!("expected number, found {other:?}"))),
        }
    }

    /// A number used as a row or limit count: a non-negative integer small
    /// enough that the `as usize` conversion is exact. Untrusted input that
    /// would saturate the cast (`PRODUCING 1e300 ROWS`) must be a typed
    /// error, not a silent `usize::MAX`.
    fn count(&mut self, what: &str) -> Result<usize, QueryError> {
        let n = self.number()?;
        if !(0.0..=1e9).contains(&n) || n.fract() != 0.0 {
            return Err(QueryError::Parse(format!("{what} must be a non-negative integer at most 1e9, got {n}")));
        }
        Ok(n as usize)
    }

    /// A number with an optional time-unit suffix; returns seconds.
    fn duration_secs(&mut self) -> Result<f64, QueryError> {
        let n = self.number()?;
        if let Some(Token::Ident(unit)) = self.peek() {
            let factor = match unit.to_ascii_lowercase().as_str() {
                "s" | "sec" | "secs" | "second" | "seconds" => Some(1.0),
                "min" | "mins" | "minute" | "minutes" => Some(60.0),
                "h" | "hr" | "hrs" | "hour" | "hours" => Some(3600.0),
                "day" | "days" => Some(86_400.0),
                "frame" | "frames" => Some(0.0), // handled by caller via 0 marker? keep literal
                _ => None,
            };
            if let Some(f) = factor {
                self.next();
                if f == 0.0 {
                    return Ok(n); // "N frames" is interpreted by the caller
                }
                let secs = n * f;
                if !secs.is_finite() {
                    return Err(QueryError::Parse(format!("duration {n} x {f} s overflows")));
                }
                return Ok(secs);
            }
        }
        Ok(n)
    }

    // -- SPLIT ----------------------------------------------------------------

    fn split_statement(&mut self) -> Result<SplitStatement, QueryError> {
        self.keyword("SPLIT")?;
        let camera = self.ident()?;
        self.keyword("BEGIN")?;
        let begin_secs = self.duration_secs()?;
        self.keyword("END")?;
        let end_secs = self.duration_secs()?;
        self.keyword("BY")?;
        self.keyword("TIME")?;
        let chunk_secs = self.duration_secs()?;
        self.keyword("STRIDE")?;
        let stride_secs = self.duration_secs()?;
        let mut mask = None;
        let mut region_scheme = None;
        loop {
            if self.peek_keyword("WITH") {
                self.next();
                self.keyword("MASK")?;
                mask = Some(self.ident()?);
            } else if self.peek_keyword("BY") {
                self.next();
                self.keyword("REGION")?;
                region_scheme = Some(self.ident()?);
            } else {
                break;
            }
        }
        self.keyword("INTO")?;
        let output = self.ident()?;
        self.expect(&Token::Semi)?;
        if end_secs <= begin_secs {
            return Err(QueryError::Parse("SPLIT END must be after BEGIN".into()));
        }
        if !(end_secs - begin_secs).is_finite() {
            return Err(QueryError::Parse("SPLIT window duration overflows".into()));
        }
        if chunk_secs <= 0.0 {
            return Err(QueryError::Parse("chunk duration must be positive".into()));
        }
        if stride_secs < 0.0 {
            return Err(QueryError::Parse("STRIDE must be non-negative".into()));
        }
        Ok(SplitStatement { camera, begin_secs, end_secs, chunk_secs, stride_secs, mask, region_scheme, output })
    }

    // -- PROCESS --------------------------------------------------------------

    fn process_statement(&mut self) -> Result<ProcessStatement, QueryError> {
        self.keyword("PROCESS")?;
        let input = self.ident()?;
        self.keyword("USING")?;
        let executable = match self.next() {
            Some(Token::Ident(s)) => s,
            Some(Token::Str(s)) => s,
            other => return Err(QueryError::Parse(format!("expected executable name, found {other:?}"))),
        };
        self.keyword("TIMEOUT")?;
        let timeout_secs = self.duration_secs()?;
        self.keyword("PRODUCING")?;
        let max_rows = self.count("PRODUCING row bound")?;
        self.keyword("ROWS")?;
        self.keyword("WITH")?;
        self.keyword("SCHEMA")?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(&Token::Colon)?;
            let dtype = self.ident()?;
            self.expect(&Token::Eq)?;
            let default = match self.next() {
                Some(Token::Str(s)) => Value::Str(s),
                Some(Token::Num(n)) => Value::Num(n),
                other => return Err(QueryError::Parse(format!("expected default value, found {other:?}"))),
            };
            let dtype = match dtype.to_ascii_uppercase().as_str() {
                "STRING" => DataType::Str,
                "NUMBER" => DataType::Num,
                other => return Err(QueryError::Parse(format!("unknown data type {other}"))),
            };
            columns.push(ColumnDef { name, dtype, default });
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(QueryError::Parse(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        self.keyword("INTO")?;
        let output = self.ident()?;
        self.expect(&Token::Semi)?;
        if max_rows == 0 {
            return Err(QueryError::Parse("PRODUCING must allow at least one row".into()));
        }
        Ok(ProcessStatement { input, executable, timeout_secs, max_rows, schema: Schema::new(columns)?, output })
    }

    // -- SELECT ---------------------------------------------------------------

    fn aggregation(&mut self, func: AggregateFunction) -> Result<Aggregation, QueryError> {
        self.expect(&Token::LParen)?;
        // COUNT(*)
        if func == AggregateFunction::Count {
            if let Some(Token::Star) = self.peek() {
                self.next();
                self.expect(&Token::RParen)?;
                return Ok(Aggregation::count_star());
            }
        }
        // range(col, lo, hi)
        if self.peek_keyword("range") {
            self.next();
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::Comma)?;
            let lo = self.number()?;
            self.expect(&Token::Comma)?;
            let hi = self.number()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::RParen)?;
            if hi < lo {
                return Err(QueryError::Parse(format!("range({column}, {lo}, {hi}) has hi < lo")));
            }
            return Ok(Aggregation { function: func, column: Some(column), range: Some((lo, hi)) });
        }
        let column = self.ident()?;
        self.expect(&Token::RParen)?;
        Ok(Aggregation { function: func, column: Some(column), range: None })
    }

    fn comparison(&mut self) -> Result<Predicate, QueryError> {
        let column = self.ident()?;
        let op = self.next();
        match op {
            Some(Token::Eq) => match self.next() {
                Some(Token::Str(s)) => Ok(Predicate::EqStr(column, s)),
                Some(Token::Num(n)) => Ok(Predicate::EqNum(column, n)),
                other => Err(QueryError::Parse(format!("expected literal after '=', found {other:?}"))),
            },
            Some(Token::Ne) => match self.next() {
                Some(Token::Str(s)) => Ok(Predicate::NeStr(column, s)),
                other => Err(QueryError::Parse(format!("expected string after '!=', found {other:?}"))),
            },
            Some(Token::Ge) => Ok(Predicate::Ge(column, self.number()?)),
            Some(Token::Le) => Ok(Predicate::Le(column, self.number()?)),
            other => Err(QueryError::Parse(format!("expected comparison operator, found {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, QueryError> {
        let mut p = self.comparison()?;
        loop {
            if self.peek_keyword("AND") {
                self.next();
                p = Predicate::And(Box::new(p), Box::new(self.comparison()?));
            } else if self.peek_keyword("OR") {
                self.next();
                p = Predicate::Or(Box::new(p), Box::new(self.comparison()?));
            } else {
                return Ok(p);
            }
        }
    }

    /// A source: table name, parenthesized inner select, optionally joined.
    ///
    /// Every `source()` ↔ `inner_select()` recursion cycle passes through
    /// here, so this one depth guard bounds the whole grammar's recursion:
    /// `((((…` from a hostile client is a typed parse error, not a stack
    /// overflow abort.
    fn source(&mut self) -> Result<Relation, QueryError> {
        if self.depth >= MAX_SOURCE_DEPTH {
            return Err(QueryError::Parse(format!("query nesting exceeds {MAX_SOURCE_DEPTH} levels")));
        }
        self.depth += 1;
        let rel = self.source_unguarded();
        self.depth -= 1;
        rel
    }

    fn source_unguarded(&mut self) -> Result<Relation, QueryError> {
        let mut rel = match self.peek() {
            Some(Token::LParen) => {
                self.next();
                let inner = self.inner_select()?;
                self.expect(&Token::RParen)?;
                inner
            }
            Some(Token::Ident(_)) => Relation::Table(self.ident()?),
            other => return Err(QueryError::Parse(format!("expected table or subquery, found {other:?}"))),
        };
        while self.peek_keyword("JOIN") || self.peek_keyword("UNION") {
            let outer = self.peek_keyword("UNION");
            self.next();
            if outer && self.peek_keyword("JOIN") {
                // allow "UNION JOIN" as well as bare "UNION"
                self.next();
            }
            let right = match self.peek() {
                Some(Token::LParen) => {
                    self.next();
                    let inner = self.inner_select()?;
                    self.expect(&Token::RParen)?;
                    inner
                }
                _ => Relation::Table(self.ident()?),
            };
            self.keyword("ON")?;
            let mut on = vec![self.ident()?];
            while let Some(Token::Comma) = self.peek() {
                self.next();
                on.push(self.ident()?);
            }
            rel = Relation::Join {
                left: Box::new(rel),
                right: Box::new(right),
                on,
                kind: if outer { JoinKind::Outer } else { JoinKind::Inner },
            };
        }
        Ok(rel)
    }

    /// An inner select: projection / filter / dedup / limit over a source.
    fn inner_select(&mut self) -> Result<Relation, QueryError> {
        if !self.peek_keyword("SELECT") {
            // A bare source inside parentheses.
            return self.source();
        }
        self.keyword("SELECT")?;
        let mut columns = Vec::new();
        let mut range: Option<(String, f64, f64)> = None;
        loop {
            if self.peek_keyword("range") {
                self.next();
                self.expect(&Token::LParen)?;
                let col = self.ident()?;
                self.expect(&Token::Comma)?;
                let lo = self.number()?;
                self.expect(&Token::Comma)?;
                let hi = self.number()?;
                self.expect(&Token::RParen)?;
                columns.push(col.clone());
                range = Some((col, lo, hi));
            } else if let Some(Token::Star) = self.peek() {
                self.next();
                columns.clear();
            } else {
                columns.push(self.ident()?);
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }
        self.keyword("FROM")?;
        let mut rel = self.source()?;
        if self.peek_keyword("WHERE") {
            self.next();
            rel = Relation::Filter { input: Box::new(rel), predicate: self.predicate()? };
        }
        if self.peek_keyword("GROUP") {
            self.next();
            self.keyword("BY")?;
            let mut keys = vec![self.ident()?];
            while let Some(Token::Comma) = self.peek() {
                self.next();
                keys.push(self.ident()?);
            }
            rel = Relation::Distinct { input: Box::new(rel), columns: keys };
        }
        if self.peek_keyword("LIMIT") {
            self.next();
            rel = Relation::Limit { input: Box::new(rel), limit: self.count("LIMIT")? };
        }
        if let Some((col, lo, hi)) = range {
            rel = Relation::RangeConstraint { input: Box::new(rel), column: col, lo, hi };
        }
        if !columns.is_empty() {
            rel = Relation::Project { input: Box::new(rel), columns };
        }
        Ok(rel)
    }

    fn select_statement(&mut self) -> Result<SelectStatement, QueryError> {
        self.keyword("SELECT")?;
        let mut aggregations = Vec::new();
        let mut group_columns_in_list: Vec<String> = Vec::new();
        loop {
            let item = match self.peek() {
                Some(Token::Ident(s)) => s.clone(),
                other => return Err(QueryError::Parse(format!("expected select item, found {other:?}"))),
            };
            let func = match item.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggregateFunction::Count),
                "SUM" => Some(AggregateFunction::Sum),
                "AVG" => Some(AggregateFunction::Avg),
                "VAR" | "VARIANCE" => Some(AggregateFunction::Var),
                "ARGMAX" => Some(AggregateFunction::ArgMax),
                _ => None,
            };
            match func {
                Some(f) => {
                    self.next();
                    aggregations.push(self.aggregation(f)?);
                }
                None => {
                    // A bare column in the select list: must be the GROUP BY column.
                    group_columns_in_list.push(self.ident()?);
                }
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }
        if aggregations.is_empty() {
            return Err(QueryError::Unsupported(
                "the outer SELECT must contain at least one aggregation (Appendix D)".into(),
            ));
        }
        self.keyword("FROM")?;
        let mut source = self.source()?;
        if self.peek_keyword("WHERE") {
            self.next();
            source = Relation::Filter { input: Box::new(source), predicate: self.predicate()? };
        }
        let mut group_by = None;
        if self.peek_keyword("GROUP") {
            self.next();
            self.keyword("BY")?;
            let column = self.ident()?;
            if self.peek_keyword("WITH") {
                self.next();
                self.keyword("KEYS")?;
                self.expect(&Token::LBracket)?;
                let mut keys = Vec::new();
                loop {
                    match self.next() {
                        Some(Token::Str(s)) => keys.push(Value::Str(s)),
                        Some(Token::Num(n)) => keys.push(Value::Num(n)),
                        other => return Err(QueryError::Parse(format!("expected key literal, found {other:?}"))),
                    }
                    match self.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::RBracket) => break,
                        other => return Err(QueryError::Parse(format!("expected ',' or ']', found {other:?}"))),
                    }
                }
                group_by = Some(GroupBy { column, keys: GroupKeys::Explicit(keys) });
            } else if self.peek_keyword("BIN") {
                self.next();
                let bin = self.duration_secs()?;
                // BIN 0 would make the planned release count infinite (the
                // window divided by the bin), which saturates to usize::MAX
                // downstream — reject at the gate.
                if bin <= 0.0 {
                    return Err(QueryError::Parse(format!("GROUP BY BIN must be positive, got {bin}")));
                }
                group_by = Some(GroupBy { column, keys: GroupKeys::ChunkBins { bin_secs: bin } });
            } else {
                return Err(QueryError::Unsupported(format!(
                    "GROUP BY {column} requires WITH KEYS [...] (analyst column) or BIN <seconds> (chunk column)"
                )));
            }
        }
        if let (Some(g), false) = (&group_by, group_columns_in_list.is_empty()) {
            if !group_columns_in_list.contains(&g.column) {
                return Err(QueryError::Unsupported(format!(
                    "non-aggregated select column(s) {group_columns_in_list:?} must match the GROUP BY column {}",
                    g.column
                )));
            }
        } else if !group_columns_in_list.is_empty() && group_by.is_none() {
            return Err(QueryError::Unsupported(
                "non-aggregated columns in the outer SELECT require a GROUP BY".into(),
            ));
        }
        let mut epsilon = None;
        if self.peek_keyword("CONSUMING") {
            self.next();
            let e = self.number()?;
            // A zero or negative ε would pass the budget check trivially —
            // and a negative debit *adds* budget. Privacy bug, not a typo.
            if e <= 0.0 {
                return Err(QueryError::Parse(format!("CONSUMING epsilon must be positive, got {e}")));
            }
            epsilon = Some(e);
        }
        self.expect(&Token::Semi)?;
        Ok(SelectStatement { aggregations, source, group_by, epsilon })
    }
}

/// Parse a full query text into its statements.
pub fn parse_query(text: &str) -> Result<ParsedQuery, QueryError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0, depth: 0 };
    let mut query = ParsedQuery::default();
    while parser.peek().is_some() {
        if parser.peek_keyword("SPLIT") {
            query.splits.push(parser.split_statement()?);
        } else if parser.peek_keyword("PROCESS") {
            query.processes.push(parser.process_statement()?);
        } else if parser.peek_keyword("SELECT") {
            query.selects.push(parser.select_statement()?);
        } else {
            return Err(QueryError::Parse(format!(
                "expected SPLIT, PROCESS or SELECT, found {:?}",
                parser.peek()
            )));
        }
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Listing 1 query, adapted to offset timestamps.
    const LISTING1: &str = r#"
        /* Select 1 month time window from camera, split video into chunks */
        SPLIT camA BEGIN 0 END 744 hr BY TIME 5 sec STRIDE 0 sec INTO chunksA;

        /* Process chunks using analyst's code, store outputs in tableA */
        PROCESS chunksA USING model.py TIMEOUT 1 sec
            PRODUCING 10 ROWS
            WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0)
            INTO tableA;

        /* S1: average speed of all cars */
        SELECT AVG(range(speed, 30, 60)) FROM tableA;

        /* S2: count total unique cars of each color */
        SELECT color, COUNT(plate) FROM (SELECT plate, color FROM tableA GROUP BY plate)
            GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"];
    "#;

    #[test]
    fn listing1_parses_completely() {
        let q = parse_query(LISTING1).expect("Listing 1 must parse");
        assert_eq!(q.splits.len(), 1);
        assert_eq!(q.processes.len(), 1);
        assert_eq!(q.selects.len(), 2);

        let split = &q.splits[0];
        assert_eq!(split.camera, "camA");
        assert_eq!(split.chunk_secs, 5.0);
        assert_eq!(split.stride_secs, 0.0);
        assert_eq!(split.end_secs, 744.0 * 3600.0);
        assert_eq!(split.output, "chunksA");

        let process = &q.processes[0];
        assert_eq!(process.executable, "model.py");
        assert_eq!(process.max_rows, 10);
        assert_eq!(process.schema.len(), 3);
        assert_eq!(process.output, "tableA");

        let s1 = &q.selects[0];
        assert_eq!(s1.aggregations[0], Aggregation::avg("speed", 30.0, 60.0));
        assert_eq!(s1.source, Relation::table("tableA"));

        let s2 = &q.selects[1];
        assert_eq!(s2.aggregations[0].function, AggregateFunction::Count);
        assert_eq!(s2.release_count(), 3);
        match &s2.source {
            Relation::Project { input, columns } => {
                assert_eq!(columns, &vec!["plate".to_string(), "color".to_string()]);
                assert!(matches!(**input, Relation::Distinct { .. }));
            }
            other => panic!("expected projection over dedup, got {other:?}"),
        }
    }

    #[test]
    fn split_with_mask_and_region() {
        let q = parse_query(
            "SPLIT cam BEGIN 0 END 1 hr BY TIME 10 sec STRIDE 0 sec WITH MASK m1 BY REGION crosswalks INTO c;",
        )
        .unwrap();
        assert_eq!(q.splits[0].mask.as_deref(), Some("m1"));
        assert_eq!(q.splits[0].region_scheme.as_deref(), Some("crosswalks"));
    }

    #[test]
    fn select_with_where_consuming_and_bins() {
        let q = parse_query(
            r#"SELECT COUNT(*) FROM tableA WHERE color = "RED" AND speed >= 30 GROUP BY chunk BIN 1 hr CONSUMING 0.5;"#,
        )
        .unwrap();
        let s = &q.selects[0];
        assert_eq!(s.epsilon, Some(0.5));
        assert!(matches!(s.source, Relation::Filter { .. }));
        match &s.group_by {
            Some(GroupBy { column, keys: GroupKeys::ChunkBins { bin_secs } }) => {
                assert_eq!(column, "chunk");
                assert_eq!(*bin_secs, 3600.0);
            }
            other => panic!("expected chunk bins, got {other:?}"),
        }
    }

    #[test]
    fn join_and_union_sources() {
        let q = parse_query("SELECT COUNT(*) FROM t1 JOIN t2 ON plate, day;").unwrap();
        match &q.selects[0].source {
            Relation::Join { on, kind, .. } => {
                assert_eq!(on, &vec!["plate".to_string(), "day".to_string()]);
                assert_eq!(*kind, JoinKind::Inner);
            }
            other => panic!("expected join, got {other:?}"),
        }
        let q = parse_query("SELECT AVG(range(hours, 0, 16)) FROM t1 UNION t2 ON taxi;").unwrap();
        assert!(matches!(&q.selects[0].source, Relation::Join { kind: JoinKind::Outer, .. }));
    }

    #[test]
    fn inner_select_with_limit_and_where() {
        let q = parse_query(r#"SELECT SUM(range(speed, 0, 100)) FROM (SELECT speed FROM t WHERE speed >= 10 LIMIT 50);"#)
            .unwrap();
        // Project > Limit > Filter > Table
        let mut rel = &q.selects[0].source;
        if let Relation::Project { input, .. } = rel {
            rel = input;
        } else {
            panic!("expected project");
        }
        assert!(matches!(rel, Relation::Limit { limit: 50, .. }));
    }

    #[test]
    fn rejected_constructs() {
        // Outer select without aggregation.
        assert!(parse_query("SELECT color FROM tableA;").is_err());
        // GROUP BY without keys or bins.
        assert!(parse_query("SELECT COUNT(*) FROM t GROUP BY color;").is_err());
        // Bare column without GROUP BY.
        assert!(parse_query("SELECT color, COUNT(*) FROM t;").is_err());
        // range with hi < lo.
        assert!(parse_query("SELECT AVG(range(speed, 60, 30)) FROM t;").is_err());
        // Unterminated string.
        assert!(parse_query(r#"SELECT COUNT(*) FROM t WHERE color = "RED;"#).is_err());
        // Garbage statement.
        assert!(parse_query("FROBNICATE t;").is_err());
        // Zero rows.
        assert!(parse_query(
            "PROCESS c USING x TIMEOUT 1 sec PRODUCING 0 ROWS WITH SCHEMA (a:NUMBER=0) INTO t;"
        )
        .is_err());
        // Inverted split window.
        assert!(parse_query("SPLIT cam BEGIN 100 END 50 BY TIME 5 sec STRIDE 0 sec INTO c;").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let q = parse_query("-- a line comment\nSELECT COUNT(*) FROM t; /* block */").unwrap();
        assert_eq!(q.selects.len(), 1);
    }

    #[test]
    fn duration_units() {
        let q = parse_query("SPLIT cam BEGIN 0 END 2 days BY TIME 30 sec STRIDE 1 min INTO c;").unwrap();
        assert_eq!(q.splits[0].end_secs, 172_800.0);
        assert_eq!(q.splits[0].stride_secs, 60.0);
    }
}
