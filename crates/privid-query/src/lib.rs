//! # privid-query
//!
//! The query layer of the Privid reproduction: untrusted intermediate tables,
//! the restricted relational algebra Privid aggregates with, the sensitivity
//! propagation rules of Fig. 10, and a parser for the SPLIT / PROCESS /
//! SELECT query language of Appendix D.
//!
//! Nothing in this crate adds noise or manages budgets — that is
//! `privid-core`'s job. This crate answers two questions:
//!
//! 1. *What is the raw (pre-noise) result of this aggregation over this
//!    table?* ([`exec`])
//! 2. *By how much could that result change if any single `(ρ, K)`-bounded
//!    event were added to or removed from the video?* ([`sensitivity`])
//!
//! The second question must be answered **without trusting the table's
//! contents**, because the table is produced by the analyst's own processor.
//! Sensitivity therefore only ever depends on structural facts Privid itself
//! enforces (chunk size, `max_rows`, declared ranges, explicit GROUP BY keys)
//! and never on values in the table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggstate;
pub mod ast;
pub mod error;
pub mod exec;
pub mod parser;
pub mod schema;
pub mod sensitivity;
pub mod table;
pub mod value;

pub use aggstate::AggState;
pub use ast::{AggregateFunction, Aggregation, Predicate, Relation, SelectStatement};
pub use error::QueryError;
pub use exec::{execute_select, FoldableSelect, RawRelease, ReleaseValue};
pub use parser::{parse_query, ParsedQuery, ProcessStatement, SplitStatement};
pub use schema::{ColumnDef, DataType, Schema};
pub use sensitivity::{Constraints, SensitivityContext, TableProfile};
pub use table::{ChunkRows, ChunkRun, ColumnData, Table};
pub use value::Value;
