//! Untrusted intermediate tables.
//!
//! A table is built by appending the (coerced) rows each chunk's processor
//! emits. Every row carries the two implicit columns Privid adds itself —
//! the chunk's start timestamp and the spatial-split region — which are the
//! only columns whose values Privid trusts (§6.2, Appendix D).

use crate::schema::{Schema, CHUNK_COLUMN, REGION_COLUMN};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One table row: the analyst columns plus the trusted implicit columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Values of the analyst-declared columns, in schema order.
    pub values: Vec<Value>,
    /// Start timestamp (seconds) of the chunk this row came from (implicit,
    /// trusted).
    pub chunk: f64,
    /// Spatial-split region id this row came from (implicit, trusted; 0 when
    /// spatial splitting is not used).
    pub region: u32,
}

/// An intermediate table: a schema plus the rows accumulated from chunks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// The analyst-declared schema.
    pub schema: Schema,
    /// All rows, in chunk order.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table { schema, rows: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append the output of one chunk, coercing every raw row to the schema
    /// and enforcing the `max_rows` cap from the PROCESS statement.
    pub fn append_chunk_output(&mut self, chunk_start_secs: f64, region: u32, raw_rows: &[Vec<Value>], max_rows: usize) {
        for raw in raw_rows.iter().take(max_rows) {
            self.rows.push(Row { values: self.schema.coerce(raw), chunk: chunk_start_secs, region });
        }
    }

    /// Append the output of one chunk **by value**: rows are moved into the
    /// table, not copied. The caller must pass rows that already match the
    /// schema (the sandbox coerces before release); the `max_rows` cap is
    /// still enforced here as defence in depth. This is the executor's hot
    /// path — with `append_chunk_output` every string cell was cloned once
    /// per row, and coerced a second time after the sandbox already had.
    pub fn append_chunk_rows(&mut self, chunk_start_secs: f64, region: u32, rows: Vec<Vec<Value>>, max_rows: usize) {
        self.rows.reserve(rows.len().min(max_rows));
        for values in rows.into_iter().take(max_rows) {
            debug_assert_eq!(values.len(), self.schema.len(), "sandbox output must match the schema");
            self.rows.push(Row { values, chunk: chunk_start_secs, region });
        }
    }

    /// Append a single already-coerced row (used by tests and by JOIN/GROUP BY
    /// intermediates).
    pub fn push_row(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Read a column value from a row by name, resolving the implicit columns.
    pub fn get(&self, row: &Row, column: &str) -> Option<Value> {
        match column {
            CHUNK_COLUMN => Some(Value::Num(row.chunk)),
            REGION_COLUMN => Some(Value::Num(row.region as f64)),
            _ => self.schema.column_index(column).and_then(|i| row.values.get(i).cloned()),
        }
    }

    /// The set of distinct values in a column (used by tests; the DP layer
    /// never branches on data-dependent key sets).
    pub fn distinct(&self, column: &str) -> Vec<Value> {
        let mut seen = Vec::new();
        for row in &self.rows {
            if let Some(v) = self.get(row, column) {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn table() -> Table {
        Table::new(Schema::listing1())
    }

    #[test]
    fn append_respects_max_rows_and_coerces() {
        let mut t = table();
        let raw = vec![
            vec![Value::str("AAA"), Value::str("RED"), Value::num(50.0)],
            vec![Value::str("BBB"), Value::str("WHITE"), Value::str("oops")],
            vec![Value::str("CCC"), Value::str("SILVER"), Value::num(70.0)],
        ];
        t.append_chunk_output(120.0, 0, &raw, 2);
        assert_eq!(t.len(), 2, "max_rows = 2 truncates the third row");
        assert_eq!(t.rows[1].values[2], Value::num(0.0), "mistyped speed coerced to default");
        assert_eq!(t.rows[0].chunk, 120.0);
    }

    #[test]
    fn implicit_columns_are_readable() {
        let mut t = table();
        t.append_chunk_output(30.0, 2, &[vec![Value::str("AAA"), Value::str("RED"), Value::num(42.0)]], 10);
        let row = &t.rows[0];
        assert_eq!(t.get(row, "chunk"), Some(Value::num(30.0)));
        assert_eq!(t.get(row, "region"), Some(Value::num(2.0)));
        assert_eq!(t.get(row, "speed"), Some(Value::num(42.0)));
        assert_eq!(t.get(row, "missing"), None);
    }

    #[test]
    fn distinct_values() {
        let mut t = Table::new(Schema::new(vec![ColumnDef::string("color", "")]).unwrap());
        for c in ["RED", "RED", "WHITE"] {
            t.append_chunk_output(0.0, 0, &[vec![Value::str(c)]], 10);
        }
        assert_eq!(t.distinct("color"), vec![Value::str("RED"), Value::str("WHITE")]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
