//! Untrusted intermediate tables, stored column-major.
//!
//! A table is built by appending the (coerced) rows each chunk's processor
//! emits. Instead of a `Vec` of row structs, the table keeps one typed vector
//! per analyst-declared column (struct-of-arrays) plus the two implicit
//! columns Privid adds itself — the chunk's start timestamp (`f64`) and the
//! spatial-split region (`u32`) — which are the only columns whose values
//! Privid trusts (§6.2, Appendix D). Every append also records a [`ChunkRun`]
//! so downstream folds can walk the table chunk by chunk without re-deriving
//! boundaries from the data.

use crate::schema::{DataType, Schema, CHUNK_COLUMN, REGION_COLUMN};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// One typed column vector. Cells are stored unboxed: coercion guarantees a
/// cell always matches its column's declared [`DataType`], so there is no
/// per-cell tag and no `Null` representation (coercion substitutes the column
/// default for missing or mistyped cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// A string-typed column.
    Str(Vec<String>),
    /// A numeric (f64) column.
    Num(Vec<f64>),
}

impl ColumnData {
    fn with_type(dtype: DataType) -> ColumnData {
        match dtype {
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Num => ColumnData::Num(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Str(v) => v.len(),
            ColumnData::Num(v) => v.len(),
        }
    }

    /// The cell at `row` as a [`Value`] (clones string cells).
    pub fn value(&self, row: usize) -> Option<Value> {
        match self {
            ColumnData::Str(v) => v.get(row).map(|s| Value::Str(s.clone())),
            ColumnData::Num(v) => v.get(row).map(|n| Value::Num(*n)),
        }
    }

    /// The cell at `row` as a number, if this is a numeric column.
    pub fn num(&self, row: usize) -> Option<f64> {
        match self {
            ColumnData::Num(v) => v.get(row).copied(),
            ColumnData::Str(_) => None,
        }
    }

    /// Push an already-coerced value; a mistyped cell falls back to the
    /// column default (defence in depth — the sandbox coerces before release,
    /// so this branch is never taken on the executor path).
    fn push(&mut self, value: Value, default: &Value) {
        match self {
            ColumnData::Str(v) => v.push(match value {
                Value::Str(s) => s,
                _ => match default {
                    Value::Str(s) => s.clone(),
                    _ => String::new(),
                },
            }),
            ColumnData::Num(v) => v.push(match value {
                Value::Num(n) => n,
                _ => default.as_num().unwrap_or(0.0),
            }),
        }
    }
}

/// One contiguous run of rows appended by a single `append_chunk_*` call:
/// the output of one (chunk, region) sandbox execution. Runs are recorded
/// even when the chunk emitted zero rows, so `runs().len()` equals the number
/// of sandbox executions and chunk boundaries survive into the fold path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkRun {
    /// Start timestamp (seconds) of the chunk this run came from.
    pub chunk_start_secs: f64,
    /// Spatial-split region id (0 when spatial splitting is not used).
    pub region: u32,
    /// First row index of the run (inclusive).
    pub start: usize,
    /// One past the last row index of the run (exclusive).
    pub end: usize,
}

/// One chunk's worth of rows: every run sharing the same chunk start,
/// collapsed into a single row range (regions of one chunk are appended
/// consecutively, so the range is contiguous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkRows {
    /// Start timestamp (seconds) of the chunk.
    pub chunk_start_secs: f64,
    /// First row index (inclusive).
    pub start: usize,
    /// One past the last row index (exclusive).
    pub end: usize,
}

/// An intermediate table: a schema plus column-major cell storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// The analyst-declared schema.
    pub schema: Schema,
    columns: Vec<ColumnData>,
    chunk: Vec<f64>,
    region: Vec<u32>,
    runs: Vec<ChunkRun>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.columns.iter().map(|c| ColumnData::with_type(c.dtype)).collect();
        Table { schema, columns, chunk: Vec::new(), region: Vec::new(), runs: Vec::new() }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.chunk.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.chunk.is_empty()
    }

    /// The typed column vectors, in schema order (implicit columns excluded).
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// The trusted implicit chunk column: per-row chunk start seconds.
    pub fn chunk_starts(&self) -> &[f64] {
        &self.chunk
    }

    /// The trusted implicit region column: per-row spatial-split region id.
    pub fn regions(&self) -> &[u32] {
        &self.region
    }

    /// The append runs, one per `append_chunk_*` call (empty runs included).
    pub fn runs(&self) -> &[ChunkRun] {
        &self.runs
    }

    /// Group consecutive runs that share a chunk start into per-chunk row
    /// ranges, in append order. Distinct chunks always have distinct starts
    /// (chunk starts increase by the stride period), so equality on the start
    /// timestamp is an exact chunk identity test.
    pub fn chunk_rows(&self) -> Vec<ChunkRows> {
        let mut out: Vec<ChunkRows> = Vec::new();
        for run in &self.runs {
            match out.last_mut() {
                Some(last) if last.chunk_start_secs == run.chunk_start_secs => last.end = run.end,
                _ => out.push(ChunkRows {
                    chunk_start_secs: run.chunk_start_secs,
                    start: run.start,
                    end: run.end,
                }),
            }
        }
        out
    }

    fn push_coerced(&mut self, values: Vec<Value>, chunk_start_secs: f64, region: u32) {
        debug_assert_eq!(values.len(), self.schema.len(), "sandbox output must match the schema");
        let mut cells = values.into_iter();
        for i in 0..self.columns.len() {
            let default = &self.schema.columns[i].default;
            // Short rows (never produced by coercion) pad with the column
            // default so every column vector stays row-aligned.
            let cell = cells.next().unwrap_or_else(|| default.clone());
            self.columns[i].push(cell, default);
        }
        self.chunk.push(chunk_start_secs);
        self.region.push(region);
        debug_assert!(
            self.columns.iter().all(|c| c.len() == self.chunk.len()),
            "column vectors must stay row-aligned with the implicit columns"
        );
    }

    fn record_run(&mut self, chunk_start_secs: f64, region: u32, start: usize) {
        self.runs.push(ChunkRun { chunk_start_secs, region, start, end: self.chunk.len() });
    }

    /// Append the output of one chunk, coercing every raw row to the schema
    /// and enforcing the `max_rows` cap from the PROCESS statement.
    pub fn append_chunk_output(&mut self, chunk_start_secs: f64, region: u32, raw_rows: &[Vec<Value>], max_rows: usize) {
        let start = self.chunk.len();
        for raw in raw_rows.iter().take(max_rows) {
            let coerced = self.schema.coerce(raw);
            self.push_coerced(coerced, chunk_start_secs, region);
        }
        self.record_run(chunk_start_secs, region, start);
    }

    /// Append the output of one chunk **by value**: rows are moved into the
    /// column vectors, not copied. The caller must pass rows that already
    /// match the schema (the sandbox coerces before release); the `max_rows`
    /// cap is still enforced here as defence in depth. This is the executor's
    /// hot path — string cells move straight from the sandbox output into the
    /// column vector without an intermediate clone.
    pub fn append_chunk_rows(&mut self, chunk_start_secs: f64, region: u32, rows: Vec<Vec<Value>>, max_rows: usize) {
        let start = self.chunk.len();
        for values in rows.into_iter().take(max_rows) {
            self.push_coerced(values, chunk_start_secs, region);
        }
        self.record_run(chunk_start_secs, region, start);
    }

    /// Read a column value from a row by name, resolving the implicit columns.
    pub fn value(&self, row: usize, column: &str) -> Option<Value> {
        if row >= self.len() {
            return None;
        }
        match column {
            CHUNK_COLUMN => Some(Value::Num(self.chunk[row])),
            REGION_COLUMN => Some(Value::Num(self.region[row] as f64)),
            _ => self.schema.column_index(column).and_then(|i| self.columns[i].value(row)),
        }
    }

    /// The set of distinct values in a column (used by tests; the DP layer
    /// never branches on data-dependent key sets).
    pub fn distinct(&self, column: &str) -> Vec<Value> {
        let mut seen = Vec::new();
        for row in 0..self.len() {
            if let Some(v) = self.value(row, column) {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn table() -> Table {
        Table::new(Schema::listing1())
    }

    #[test]
    fn append_respects_max_rows_and_coerces() {
        let mut t = table();
        let raw = vec![
            vec![Value::str("AAA"), Value::str("RED"), Value::num(50.0)],
            vec![Value::str("BBB"), Value::str("WHITE"), Value::str("oops")],
            vec![Value::str("CCC"), Value::str("SILVER"), Value::num(70.0)],
        ];
        t.append_chunk_output(120.0, 0, &raw, 2);
        assert_eq!(t.len(), 2, "max_rows = 2 truncates the third row");
        assert_eq!(t.value(1, "speed"), Some(Value::num(0.0)), "mistyped speed coerced to default");
        assert_eq!(t.chunk_starts()[0], 120.0);
    }

    #[test]
    fn implicit_columns_are_readable() {
        let mut t = table();
        t.append_chunk_output(30.0, 2, &[vec![Value::str("AAA"), Value::str("RED"), Value::num(42.0)]], 10);
        assert_eq!(t.value(0, "chunk"), Some(Value::num(30.0)));
        assert_eq!(t.value(0, "region"), Some(Value::num(2.0)));
        assert_eq!(t.value(0, "speed"), Some(Value::num(42.0)));
        assert_eq!(t.value(0, "missing"), None);
        assert_eq!(t.value(1, "speed"), None, "out-of-range row");
    }

    #[test]
    fn distinct_values() {
        let mut t = Table::new(Schema::new(vec![ColumnDef::string("color", "")]).unwrap());
        for c in ["RED", "RED", "WHITE"] {
            t.append_chunk_output(0.0, 0, &[vec![Value::str(c)]], 10);
        }
        assert_eq!(t.distinct("color"), vec![Value::str("RED"), Value::str("WHITE")]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn runs_record_every_append_including_empty_chunks() {
        let mut t = table();
        t.append_chunk_output(0.0, 0, &[vec![Value::str("AAA"), Value::str("RED"), Value::num(1.0)]], 10);
        t.append_chunk_output(0.0, 1, &[], 10); // same chunk, second region, no rows
        t.append_chunk_rows(10.0, 0, vec![], 10); // empty chunk
        t.append_chunk_rows(
            20.0,
            0,
            vec![
                vec![Value::str("BBB"), Value::str("WHITE"), Value::num(2.0)],
                vec![Value::str("CCC"), Value::str("SILVER"), Value::num(3.0)],
            ],
            10,
        );
        assert_eq!(t.runs().len(), 4, "one run per append, empties included");
        assert_eq!(t.runs()[1], ChunkRun { chunk_start_secs: 0.0, region: 1, start: 1, end: 1 });
        let chunks = t.chunk_rows();
        assert_eq!(chunks.len(), 3, "two regions of chunk 0 collapse into one range");
        assert_eq!(chunks[0], ChunkRows { chunk_start_secs: 0.0, start: 0, end: 1 });
        assert_eq!(chunks[1], ChunkRows { chunk_start_secs: 10.0, start: 1, end: 1 });
        assert_eq!(chunks[2], ChunkRows { chunk_start_secs: 20.0, start: 1, end: 3 });
    }
}
