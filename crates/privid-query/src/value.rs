//! Cell values of intermediate tables.
//!
//! The query grammar (Appendix D) allows two analyst-facing data types,
//! `STRING` and `NUMBER`; `Null` only arises internally for missing cells
//! before schema defaults are applied.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A string value.
    Str(String),
    /// A floating-point number.
    Num(f64),
    /// Missing value (replaced by the column default during coercion).
    Null,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a numeric value.
    pub fn num(n: f64) -> Value {
        Value::Num(n)
    }

    /// The numeric content, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A canonical string used as a GROUP BY key. Numbers are formatted with
    /// enough precision for exact keys produced by `hour()`/`day()` helpers.
    pub fn group_key(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Num(n) => {
                if (n.fract()).abs() < 1e-12 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Null => String::new(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(3.5).as_num(), Some(3.5));
        assert_eq!(Value::from(7i64).as_num(), Some(7.0));
        assert_eq!(Value::from("red").as_str(), Some("red"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("red").as_num(), None);
        assert_eq!(Value::from(1.0).as_str(), None);
    }

    #[test]
    fn group_keys_are_stable() {
        assert_eq!(Value::num(4.0).group_key(), "4");
        assert_eq!(Value::num(4.5).group_key(), "4.5");
        assert_eq!(Value::str("RED").group_key(), "RED");
        assert_eq!(Value::Null.group_key(), "");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::num(2.0).to_string(), "2");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
