//! Incremental aggregate state: mergeable partial aggregates per function.
//!
//! An [`AggState`] is the running state of one aggregation (COUNT / SUM /
//! AVG / VAR / ARGMAX) over a prefix of a table. States are built by
//! **sequential observation**: each surviving row is fed to
//! [`AggState::observe`] in table row order (chunk-major, append order within
//! a chunk). Because f64 addition is not associative, this is the load-bearing
//! invariant for Privid's bit-for-bit determinism contract:
//!
//! - **Fold order.** A window's state is always produced by observing its
//!   rows in the same order the row-oriented executor iterates them. A cached
//!   prefix state extended by observing the remaining rows therefore performs
//!   *exactly* the same sequence of floating-point operations as a from-scratch
//!   aggregation over the whole window — the released values are bit-identical,
//!   not merely close.
//! - **Moments form.** VAR is kept as (count, sum, sum-of-squares) moments and
//!   released as `sumsq/n − mean²` (clamped at 0); the row-oriented executor
//!   uses the identical formula so the two paths agree exactly.
//! - **[`AggState::merge`] contract.** Merging two partial states is exact for
//!   COUNT and ARGMAX (their adds are integer-valued f64s, exact below 2^53)
//!   but only associativity-limited (ULP-level) for the moment aggregates,
//!   because `(a+b)+c ≠ a+(b+c)` in general. The release path therefore never
//!   merges sibling states — it extends a prefix by sequential observation —
//!   and `merge` exists for callers that accept ULP drift (e.g. approximate
//!   cross-window rollups).
//!
//! Clamping (both `range(...)` constraints and an aggregation's declared
//! range) happens **before** observation, in the caller; an `AggState` only
//! ever sees post-clamp cells, which keeps the state independent of where in
//! the plan the clamps sit.

use crate::ast::AggregateFunction;
use crate::exec::ReleaseValue;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The running partial state of one aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggState {
    /// COUNT: number of surviving rows (cell content irrelevant).
    Count {
        /// Rows observed so far.
        rows: f64,
    },
    /// SUM: running sum of observed numeric cells.
    Sum {
        /// Sum of observed (post-clamp) values.
        sum: f64,
    },
    /// AVG: running count + sum of observed numeric cells.
    Avg {
        /// Number of numeric cells observed.
        count: f64,
        /// Sum of observed (post-clamp) values.
        sum: f64,
    },
    /// VAR: running moments (count, sum, sum of squares).
    Var {
        /// Number of numeric cells observed.
        count: f64,
        /// Sum of observed (post-clamp) values.
        sum: f64,
        /// Sum of squares of observed (post-clamp) values.
        sumsq: f64,
    },
    /// ARGMAX: per-key row counts, keyed by the cell's group key. A `BTreeMap`
    /// keeps candidates in sorted key order — the same deterministic order
    /// `report_noisy_max` uses to break exact ties (lexicographically smallest
    /// key wins), so candidate enumeration is stable across paths.
    ArgMax {
        /// Observed group keys and their counts.
        counts: BTreeMap<String, f64>,
    },
}

impl AggState {
    /// The empty (identity) state for an aggregation function.
    pub fn identity(function: AggregateFunction) -> AggState {
        match function {
            AggregateFunction::Count => AggState::Count { rows: 0.0 },
            AggregateFunction::Sum => AggState::Sum { sum: 0.0 },
            AggregateFunction::Avg => AggState::Avg { count: 0.0, sum: 0.0 },
            AggregateFunction::Var => AggState::Var { count: 0.0, sum: 0.0, sumsq: 0.0 },
            AggregateFunction::ArgMax => AggState::ArgMax { counts: BTreeMap::new() },
        }
    }

    /// Observe one surviving row. `cell` is the aggregation column's value for
    /// this row (already transformed by any `range(...)` constraints in the
    /// plan), or `None` when the aggregation has no column (`COUNT(*)`).
    /// `range` is the aggregation's own declared clamp, applied to numeric
    /// cells exactly as the row-oriented executor does.
    pub fn observe(&mut self, cell: Option<&Value>, range: Option<(f64, f64)>) {
        match self {
            AggState::Count { rows } => *rows += 1.0,
            AggState::Sum { sum } => {
                if let Some(x) = cell.and_then(|v| v.as_num()) {
                    *sum += clamp(x, range);
                }
            }
            AggState::Avg { count, sum } => {
                if let Some(x) = cell.and_then(|v| v.as_num()) {
                    *count += 1.0;
                    *sum += clamp(x, range);
                }
            }
            AggState::Var { count, sum, sumsq } => {
                if let Some(x) = cell.and_then(|v| v.as_num()) {
                    let x = clamp(x, range);
                    *count += 1.0;
                    *sum += x;
                    *sumsq += x * x;
                }
            }
            AggState::ArgMax { counts } => {
                if let Some(v) = cell {
                    *counts.entry(v.group_key()).or_insert(0.0) += 1.0;
                }
            }
        }
    }

    /// Merge another partial state into this one. Exact for COUNT / ARGMAX;
    /// ULP-limited for SUM / AVG / VAR (see the module docs) — the bit-exact
    /// release path extends prefixes by [`AggState::observe`] instead.
    /// Mismatched variants are ignored (debug-asserted): states are only ever
    /// merged within one compiled aggregation, where variants always agree.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count { rows }, AggState::Count { rows: o }) => *rows += o,
            (AggState::Sum { sum }, AggState::Sum { sum: o }) => *sum += o,
            (AggState::Avg { count, sum }, AggState::Avg { count: oc, sum: os }) => {
                *count += oc;
                *sum += os;
            }
            (
                AggState::Var { count, sum, sumsq },
                AggState::Var { count: oc, sum: os, sumsq: oq },
            ) => {
                *count += oc;
                *sum += os;
                *sumsq += oq;
            }
            (AggState::ArgMax { counts }, AggState::ArgMax { counts: o }) => {
                for (k, c) in o {
                    *counts.entry(k.clone()).or_insert(0.0) += c;
                }
            }
            _ => debug_assert!(false, "merged AggState variants must match"),
        }
    }

    /// The raw release value of this state. Empty-input semantics mirror the
    /// row-oriented executor: AVG and VAR of zero observations release 0.
    pub fn release(&self) -> ReleaseValue {
        match self {
            AggState::Count { rows } => ReleaseValue::Number(*rows),
            AggState::Sum { sum } => ReleaseValue::Number(*sum),
            AggState::Avg { count, sum } => {
                ReleaseValue::Number(if *count == 0.0 { 0.0 } else { sum / count })
            }
            AggState::Var { count, sum, sumsq } => ReleaseValue::Number(if *count == 0.0 {
                0.0
            } else {
                let mean = sum / count;
                (sumsq / count - mean * mean).max(0.0)
            }),
            AggState::ArgMax { counts } => {
                ReleaseValue::Candidates(counts.iter().map(|(k, c)| (k.clone(), *c)).collect())
            }
        }
    }
}

fn clamp(x: f64, range: Option<(f64, f64)>) -> f64 {
    match range {
        Some((lo, hi)) => x.clamp(lo, hi),
        None => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_observation_matches_flat_sum_bitwise() {
        let values = [45.0, 50.0, 55.0, 70.0, 20.0];
        let mut st = AggState::identity(AggregateFunction::Sum);
        for v in values {
            st.observe(Some(&Value::Num(v)), Some((0.0, 100.0)));
        }
        let flat: f64 = values.iter().sum();
        assert_eq!(st.release(), ReleaseValue::Number(flat));
    }

    #[test]
    fn prefix_extension_equals_from_scratch_bitwise() {
        // Awkward magnitudes so f64 rounding actually bites: the prefix-extended
        // state must still match a from-scratch fold bit for bit.
        let values: Vec<f64> = (0..100).map(|i| 1e15 / (i as f64 + 3.0) + 0.1 * i as f64).collect();
        for func in [AggregateFunction::Sum, AggregateFunction::Avg, AggregateFunction::Var] {
            let mut whole = AggState::identity(func);
            for v in &values {
                whole.observe(Some(&Value::Num(*v)), None);
            }
            let mut prefix = AggState::identity(func);
            for v in &values[..37] {
                prefix.observe(Some(&Value::Num(*v)), None);
            }
            let mut extended = prefix.clone();
            for v in &values[37..] {
                extended.observe(Some(&Value::Num(*v)), None);
            }
            assert_eq!(extended, whole, "{func:?}: extension must replay the exact op sequence");
            assert_eq!(extended.release(), whole.release());
        }
    }

    #[test]
    fn merge_is_exact_for_count_and_argmax() {
        let mut a = AggState::identity(AggregateFunction::Count);
        let mut b = AggState::identity(AggregateFunction::Count);
        for _ in 0..1000 {
            a.observe(None, None);
        }
        for _ in 0..234 {
            b.observe(None, None);
        }
        a.merge(&b);
        assert_eq!(a.release(), ReleaseValue::Number(1234.0));

        let mut a = AggState::identity(AggregateFunction::ArgMax);
        let mut b = AggState::identity(AggregateFunction::ArgMax);
        for k in ["RED", "RED", "BLUE"] {
            a.observe(Some(&Value::str(k)), None);
        }
        for k in ["BLUE", "GREEN"] {
            b.observe(Some(&Value::str(k)), None);
        }
        a.merge(&b);
        assert_eq!(
            a.release(),
            ReleaseValue::Candidates(vec![
                ("BLUE".into(), 2.0),
                ("GREEN".into(), 1.0),
                ("RED".into(), 2.0),
            ]),
            "candidates enumerate in sorted key order"
        );
    }

    #[test]
    fn empty_states_release_like_the_row_path() {
        assert_eq!(AggState::identity(AggregateFunction::Count).release(), ReleaseValue::Number(0.0));
        assert_eq!(AggState::identity(AggregateFunction::Sum).release(), ReleaseValue::Number(0.0));
        assert_eq!(AggState::identity(AggregateFunction::Avg).release(), ReleaseValue::Number(0.0));
        assert_eq!(AggState::identity(AggregateFunction::Var).release(), ReleaseValue::Number(0.0));
        assert_eq!(
            AggState::identity(AggregateFunction::ArgMax).release(),
            ReleaseValue::Candidates(vec![])
        );
    }

    #[test]
    fn non_numeric_cells_are_skipped_by_moment_aggregates() {
        let mut st = AggState::identity(AggregateFunction::Avg);
        st.observe(Some(&Value::str("oops")), None);
        st.observe(Some(&Value::Num(10.0)), None);
        assert_eq!(st.release(), ReleaseValue::Number(10.0));
    }
}
