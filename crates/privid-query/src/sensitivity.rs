//! Sensitivity of a Privid query under `(ρ, K)`-event-duration privacy —
//! the rules of Fig. 10 and Definition 6.1.
//!
//! The central objects are:
//!
//! * [`TableProfile`] — the *structural* facts Privid itself enforces about a
//!   base intermediate table: `max_rows` per chunk, chunk duration, the
//!   governing policy `(ρ, K)`, and the number of chunks in the query window.
//!   From these, Eq. 6.2 bounds the number of rows any `(ρ, K)`-bounded event
//!   can influence: `∆ = max_rows · K · (1 + ⌈ρ/c⌉)`.
//! * [`Constraints`] — what is known about a relation while walking the AST:
//!   its ∆ (rows an event can influence), per-column range constraints, and
//!   an upper bound on its total size. These are the `∆P`, `C̃r`, `C̃s` of
//!   Fig. 10.
//! * [`SensitivityContext::release_sensitivity`] — the sensitivity of one
//!   data release, combining the relation's constraints with the aggregation
//!   function's formula (Fig. 10, top table).
//!
//! Everything here deliberately ignores the *contents* of tables: the analyst
//! controls those, so a bound that depended on them would be unsound. The
//! JOIN rule is the canonical example (§6.3): the sensitivity of a join is the
//! **sum** of its inputs' sensitivities, never the min, because the analyst's
//! processor can "prime" either table with values that only appear in the
//! other.

use crate::ast::{AggregateFunction, Aggregation, GroupKeys, Relation, SelectStatement};
use crate::error::QueryError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Structural facts about one base intermediate table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableProfile {
    /// `max_rows` from the PROCESS statement: cap on rows per chunk.
    pub max_rows_per_chunk: usize,
    /// Chunk duration `c` in seconds, from the SPLIT statement.
    pub chunk_secs: f64,
    /// Policy ρ in seconds (possibly the reduced ρ of a chosen mask).
    pub rho_secs: f64,
    /// Policy K.
    pub k: u32,
    /// Number of chunks the query window produces for this table. Trusted
    /// because Privid performs the split itself; bounds the table's size.
    pub num_chunks: u64,
}

impl TableProfile {
    /// Worst-case number of chunks one event segment of duration ρ can span
    /// (Eq. 6.1): `1 + ⌈ρ/c⌉`.
    pub fn max_chunks_per_segment(&self) -> u64 {
        1 + (self.rho_secs / self.chunk_secs).ceil() as u64
    }

    /// Intermediate-table sensitivity (Definition 6.1 / Eq. 6.2): the maximum
    /// number of rows a `(ρ, K)`-bounded event can influence.
    pub fn delta_rows(&self) -> f64 {
        self.max_rows_per_chunk as f64 * self.k as f64 * self.max_chunks_per_segment() as f64
    }

    /// Structural upper bound on the table's total row count:
    /// `num_chunks · max_rows`.
    pub fn max_total_rows(&self) -> f64 {
        self.num_chunks as f64 * self.max_rows_per_chunk as f64
    }
}

/// The Fig. 10 constraint triple for a relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// `∆P(R)`: maximum number of rows a `(ρ, K)`-bounded event can influence.
    pub delta_rows: f64,
    /// `C̃r(R, a)`: known value range per column.
    pub ranges: HashMap<String, (f64, f64)>,
    /// `C̃s(R)`: upper bound on the relation's total row count, if known.
    pub size: Option<f64>,
}

impl Constraints {
    /// The range constraint for a column, if bound.
    pub fn range_of(&self, column: &str) -> Option<(f64, f64)> {
        self.ranges.get(column).copied()
    }
}

/// Context mapping base-table names to their structural profiles.
#[derive(Debug, Clone, Default)]
pub struct SensitivityContext {
    /// Profiles keyed by the table name used in the query.
    pub profiles: HashMap<String, TableProfile>,
}

impl SensitivityContext {
    /// Create an empty context.
    pub fn new() -> Self {
        SensitivityContext { profiles: HashMap::new() }
    }

    /// Register a base table's profile.
    pub fn register(&mut self, name: impl Into<String>, profile: TableProfile) {
        self.profiles.insert(name.into(), profile);
    }

    /// Compute the Fig. 10 constraints of an inner relation.
    pub fn constraints_of(&self, relation: &Relation) -> Result<Constraints, QueryError> {
        match relation {
            Relation::Table(name) => {
                let p = self.profiles.get(name).ok_or_else(|| QueryError::UnknownTable(name.clone()))?;
                Ok(Constraints { delta_rows: p.delta_rows(), ranges: HashMap::new(), size: Some(p.max_total_rows()) })
            }
            // Selection: never adds or alters rows — all constraints carry over.
            Relation::Filter { input, .. } => self.constraints_of(input),
            // LIMIT x bounds the size by x.
            Relation::Limit { input, limit } => {
                let mut c = self.constraints_of(input)?;
                c.size = Some(match c.size {
                    Some(s) => s.min(*limit as f64),
                    None => *limit as f64,
                });
                Ok(c)
            }
            // Projection: surviving columns keep their ranges; ∆ and size carry.
            Relation::Project { input, columns } => {
                let mut c = self.constraints_of(input)?;
                c.ranges.retain(|k, _| columns.contains(k));
                Ok(c)
            }
            // range(col, lo, hi): binds the column's range.
            Relation::RangeConstraint { input, column, lo, hi } => {
                if hi < lo {
                    return Err(QueryError::Unsupported(format!("range({column}, {lo}, {hi}) has hi < lo")));
                }
                let mut c = self.constraints_of(input)?;
                c.ranges.insert(column.clone(), (*lo, *hi));
                Ok(c)
            }
            // Intermediate GROUP BY (dedup): rows are merged but an event can
            // still influence ∆ of the surviving rows. Ranges carry over (the
            // dedup keeps representative values); the size bound carries over
            // (dedup can only shrink the relation).
            Relation::Distinct { input, .. } => self.constraints_of(input),
            // JOIN: sensitivities add (§6.3) regardless of join kind, because
            // the untrusted executable can prime either side. Ranges merge
            // (conservatively requiring both sides to agree when both bind the
            // same column); the size bound depends on the kind.
            Relation::Join { left, right, kind, .. } => {
                let l = self.constraints_of(left)?;
                let r = self.constraints_of(right)?;
                let mut ranges = l.ranges.clone();
                for (col, (rlo, rhi)) in r.ranges {
                    ranges
                        .entry(col)
                        .and_modify(|(lo, hi)| {
                            *lo = lo.min(rlo);
                            *hi = hi.max(rhi);
                        })
                        .or_insert((rlo, rhi));
                }
                let size = match kind {
                    // Union: at most the sum of both sides.
                    crate::ast::JoinKind::Outer => match (l.size, r.size) {
                        (Some(a), Some(b)) => Some(a + b),
                        _ => None,
                    },
                    // Equijoin: each left row can match every right row.
                    crate::ast::JoinKind::Inner => match (l.size, r.size) {
                        (Some(a), Some(b)) => Some(a * b),
                        _ => None,
                    },
                };
                Ok(Constraints { delta_rows: l.delta_rows + r.delta_rows, ranges, size })
            }
        }
    }

    /// Sensitivity of a single aggregation release over `relation`.
    ///
    /// With a GROUP BY, every per-key release conservatively uses the same
    /// sensitivity (an event's rows could all land in one group).
    pub fn release_sensitivity(&self, relation: &Relation, agg: &Aggregation) -> Result<f64, QueryError> {
        let constraints = self.constraints_of(relation)?;
        let delta = constraints.delta_rows;
        // The aggregation's own `range(col, lo, hi)` takes precedence over a
        // range bound earlier in the relation tree.
        let range = |col: &str| -> Option<(f64, f64)> { agg.range.or_else(|| constraints.range_of(col)) };
        match agg.function {
            AggregateFunction::Count => Ok(delta),
            AggregateFunction::ArgMax => Ok(delta),
            AggregateFunction::Sum => {
                let col = agg.column.as_deref().ok_or_else(|| QueryError::Unsupported("SUM needs a column".into()))?;
                let (lo, hi) = range(col).ok_or_else(|| {
                    QueryError::MissingConstraint(format!("SUM({col}) requires range({col}, lo, hi)"))
                })?;
                Ok(delta * lo.abs().max(hi.abs()))
            }
            AggregateFunction::Avg => {
                let col = agg.column.as_deref().ok_or_else(|| QueryError::Unsupported("AVG needs a column".into()))?;
                let (lo, hi) = range(col).ok_or_else(|| {
                    QueryError::MissingConstraint(format!("AVG({col}) requires range({col}, lo, hi)"))
                })?;
                let size = constraints.size.ok_or_else(|| {
                    QueryError::MissingConstraint(format!(
                        "AVG({col}) requires a size bound (LIMIT, or a base table whose window bounds the row count)"
                    ))
                })?;
                Ok(delta * (hi - lo) / size.max(1.0))
            }
            AggregateFunction::Var => {
                let col = agg.column.as_deref().ok_or_else(|| QueryError::Unsupported("VAR needs a column".into()))?;
                let (lo, hi) = range(col).ok_or_else(|| {
                    QueryError::MissingConstraint(format!("VAR({col}) requires range({col}, lo, hi)"))
                })?;
                let size = constraints.size.ok_or_else(|| {
                    QueryError::MissingConstraint(format!("VAR({col}) requires a size bound"))
                })?;
                Ok((delta * (hi - lo)).powi(2) / size.max(1.0))
            }
        }
    }

    /// Sensitivities for every release of a SELECT statement, in the same
    /// order the executor produces them (aggregations outer, group keys inner).
    pub fn statement_sensitivities(
        &self,
        stmt: &SelectStatement,
        chunk_bins_in_window: usize,
    ) -> Result<Vec<f64>, QueryError> {
        // Validate GROUP BY restrictions: analyst columns require explicit keys.
        if let Some(g) = &stmt.group_by {
            let implicit = crate::schema::Schema::is_implicit(&g.column);
            match (&g.keys, implicit) {
                (GroupKeys::Explicit(keys), _) if keys.is_empty() => {
                    return Err(QueryError::Unsupported("GROUP BY WITH KEYS requires at least one key".into()))
                }
                (GroupKeys::ChunkBins { .. }, false) => {
                    return Err(QueryError::Unsupported(
                        "GROUP BY over an analyst column must provide explicit keys (WITH KEYS [...])".into(),
                    ))
                }
                _ => {}
            }
        }
        let groups = match &stmt.group_by {
            Some(g) => match &g.keys {
                GroupKeys::Explicit(keys) => keys.len().max(1),
                GroupKeys::ChunkBins { .. } => chunk_bins_in_window.max(1),
            },
            None => 1,
        };
        // The release count allocates a Vec below and drives per-release
        // noise sampling: a pathological window/bin ratio (or an enormous
        // explicit key list from untrusted bytes) must be a typed refusal,
        // not a capacity-overflow abort.
        const MAX_PLANNED_RELEASES: usize = 1 << 20;
        let releases = stmt.aggregations.len().saturating_mul(groups);
        if releases > MAX_PLANNED_RELEASES {
            return Err(QueryError::Unsupported(format!(
                "SELECT plans {releases} releases, more than the {MAX_PLANNED_RELEASES} supported"
            )));
        }
        let mut out = Vec::with_capacity(releases);
        for agg in &stmt.aggregations {
            let s = self.release_sensitivity(&stmt.source, agg)?;
            for _ in 0..groups {
                out.push(s);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{JoinKind, Predicate};
    use crate::value::Value;

    fn listing1_profile() -> TableProfile {
        // Listing 1: 5 s chunks over one month, max 10 rows/chunk, policy
        // (ρ = 30 s, K = 2).
        TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 2, num_chunks: 535_680 }
    }

    fn ctx() -> SensitivityContext {
        let mut c = SensitivityContext::new();
        c.register("tableA", listing1_profile());
        c
    }

    #[test]
    fn eq_6_2_delta_rows() {
        let p = listing1_profile();
        assert_eq!(p.max_chunks_per_segment(), 7, "1 + ceil(30/5)");
        assert_eq!(p.delta_rows(), 10.0 * 2.0 * 7.0);
        assert_eq!(p.max_total_rows(), 5_356_800.0);
    }

    #[test]
    fn count_sensitivity_is_delta() {
        let ctx = ctx();
        let s = ctx.release_sensitivity(&Relation::table("tableA"), &Aggregation::count_star()).unwrap();
        assert_eq!(s, 140.0);
    }

    #[test]
    fn sum_requires_and_uses_range() {
        let ctx = ctx();
        let missing = ctx.release_sensitivity(&Relation::table("tableA"), &Aggregation::count("x"));
        assert!(missing.is_ok(), "count never needs a range");
        let no_range = Aggregation { function: AggregateFunction::Sum, column: Some("speed".into()), range: None };
        assert!(matches!(
            ctx.release_sensitivity(&Relation::table("tableA"), &no_range),
            Err(QueryError::MissingConstraint(_))
        ));
        let s = ctx.release_sensitivity(&Relation::table("tableA"), &Aggregation::sum("speed", 0.0, 60.0)).unwrap();
        assert_eq!(s, 140.0 * 60.0);
    }

    #[test]
    fn avg_uses_window_size_bound() {
        let ctx = ctx();
        let s = ctx.release_sensitivity(&Relation::table("tableA"), &Aggregation::avg("speed", 30.0, 60.0)).unwrap();
        assert!((s - 140.0 * 30.0 / 5_356_800.0).abs() < 1e-12);
    }

    #[test]
    fn avg_after_unbounded_join_needs_limit() {
        let mut ctx = ctx();
        ctx.register("tableB", listing1_profile());
        // Join of two bounded tables has a (large) bounded size, so AVG works…
        let joined = Relation::table("tableA").join(Relation::table("tableB"), vec!["plate"], JoinKind::Inner);
        assert!(ctx.release_sensitivity(&joined, &Aggregation::avg("speed", 0.0, 60.0)).is_ok());
        // …and a LIMIT tightens it, lowering the noise.
        let limited = joined.clone().limit(1000);
        let s_join = ctx.release_sensitivity(&joined, &Aggregation::avg("speed", 0.0, 60.0)).unwrap();
        let s_limited = ctx.release_sensitivity(&limited, &Aggregation::avg("speed", 0.0, 60.0)).unwrap();
        assert!(s_limited > s_join, "smaller size bound means each row matters more");
    }

    #[test]
    fn join_sensitivity_is_additive_not_min() {
        // §6.3: the intersection's sensitivity is x + y, not min(x, y).
        let mut ctx = SensitivityContext::new();
        ctx.register("t1", TableProfile { max_rows_per_chunk: 5, chunk_secs: 5.0, rho_secs: 10.0, k: 1, num_chunks: 100 });
        ctx.register("t2", TableProfile { max_rows_per_chunk: 3, chunk_secs: 10.0, rho_secs: 20.0, k: 1, num_chunks: 50 });
        let d1 = ctx.constraints_of(&Relation::table("t1")).unwrap().delta_rows;
        let d2 = ctx.constraints_of(&Relation::table("t2")).unwrap().delta_rows;
        let joined = Relation::table("t1").join(Relation::table("t2"), vec!["plate"], JoinKind::Inner);
        let c = ctx.constraints_of(&joined).unwrap();
        assert_eq!(c.delta_rows, d1 + d2);
        let unioned = Relation::table("t1").join(Relation::table("t2"), vec!["plate"], JoinKind::Outer);
        assert_eq!(ctx.constraints_of(&unioned).unwrap().delta_rows, d1 + d2);
    }

    #[test]
    fn filter_distinct_and_project_preserve_delta() {
        let ctx = ctx();
        let base = ctx.constraints_of(&Relation::table("tableA")).unwrap();
        let wrapped = Relation::table("tableA")
            .filter(Predicate::EqStr("color".into(), "RED".into()))
            .distinct_on(vec!["plate"])
            .project(vec!["plate", "speed"]);
        let c = ctx.constraints_of(&wrapped).unwrap();
        assert_eq!(c.delta_rows, base.delta_rows);
        assert_eq!(c.size, base.size);
    }

    #[test]
    fn projection_drops_range_of_removed_columns() {
        let ctx = ctx();
        let rel = Relation::table("tableA").with_range("speed", 30.0, 60.0).project(vec!["plate"]);
        let c = ctx.constraints_of(&rel).unwrap();
        assert!(c.range_of("speed").is_none());
        let kept = Relation::table("tableA").with_range("speed", 30.0, 60.0).project(vec!["speed"]);
        assert_eq!(ctx.constraints_of(&kept).unwrap().range_of("speed"), Some((30.0, 60.0)));
    }

    #[test]
    fn limit_bounds_size() {
        let ctx = ctx();
        let rel = Relation::table("tableA").limit(42);
        assert_eq!(ctx.constraints_of(&rel).unwrap().size, Some(42.0));
    }

    #[test]
    fn invalid_range_rejected() {
        let ctx = ctx();
        let rel = Relation::table("tableA").with_range("speed", 60.0, 30.0);
        assert!(ctx.constraints_of(&rel).is_err());
    }

    #[test]
    fn statement_sensitivities_per_release() {
        let ctx = ctx();
        let stmt = SelectStatement::simple(Aggregation::count("plate"), Relation::table("tableA")).group_by_keys(
            "color",
            vec![Value::str("RED"), Value::str("WHITE"), Value::str("SILVER")],
        );
        let s = ctx.statement_sensitivities(&stmt, 1).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|&x| x == 140.0));
    }

    #[test]
    fn group_by_analyst_column_requires_explicit_keys() {
        let ctx = ctx();
        let mut stmt = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"));
        stmt.group_by = Some(crate::ast::GroupBy {
            column: "color".into(),
            keys: GroupKeys::ChunkBins { bin_secs: 3600.0 },
        });
        assert!(matches!(ctx.statement_sensitivities(&stmt, 1), Err(QueryError::Unsupported(_))));
        let empty_keys = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_keys("color", vec![]);
        assert!(ctx.statement_sensitivities(&empty_keys, 1).is_err());
    }

    #[test]
    fn chunk_bin_grouping_is_allowed_without_keys() {
        let ctx = ctx();
        let stmt = SelectStatement::simple(Aggregation::count_star(), Relation::table("tableA"))
            .group_by_chunk_bins(3600.0);
        let s = ctx.statement_sensitivities(&stmt, 12).unwrap();
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn sensitivity_monotone_in_rho_k_and_max_rows() {
        let base = TableProfile { max_rows_per_chunk: 10, chunk_secs: 5.0, rho_secs: 30.0, k: 1, num_chunks: 1000 };
        let more_rho = TableProfile { rho_secs: 60.0, ..base.clone() };
        let more_k = TableProfile { k: 3, ..base.clone() };
        let more_rows = TableProfile { max_rows_per_chunk: 20, ..base.clone() };
        assert!(more_rho.delta_rows() > base.delta_rows());
        assert!(more_k.delta_rows() > base.delta_rows());
        assert!(more_rows.delta_rows() > base.delta_rows());
    }
}
