#!/usr/bin/env sh
# Records a machine-readable live-ingestion benchmark snapshot at the repo
# root (BENCH_PR4.json), tracking append-batch throughput, standing-query
# latency and the closed-window cache hit rate PR over PR.
#
# Usage:
#   scripts/bench_streaming.sh            # full snapshot -> BENCH_PR4.json
#   scripts/bench_streaming.sh --smoke    # quick CI smoke run
#   scripts/bench_streaming.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr4_streaming -- "$@"
