#!/usr/bin/env sh
# Records a machine-readable incremental-aggregation benchmark snapshot at
# the repo root (BENCH_PR8.json): per-firing standing-query latency across a
# 10x window-length sweep (incremental vs seed-style), and aggregate
# throughput for eight analysts sharing one foldable sub-plan through the
# tier-2 aggregate-state cache.
#
# Usage:
#   scripts/bench_standing.sh            # full snapshot -> BENCH_PR8.json
#   scripts/bench_standing.sh --smoke    # quick CI smoke run
#   scripts/bench_standing.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr8_standing -- "$@"
