#!/usr/bin/env sh
# Records a machine-readable concurrent-serving benchmark snapshot at the
# repo root (BENCH_PR3.json), tracking the serving layer's throughput and
# cache-hit speedup PR over PR.
#
# Usage:
#   scripts/bench_concurrent.sh            # full snapshot -> BENCH_PR3.json
#   scripts/bench_concurrent.sh --smoke    # quick CI smoke run
#   scripts/bench_concurrent.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr3_concurrent -- "$@"
