#!/usr/bin/env sh
# Workspace-wide privacy & concurrency lint (privid-analyzer).
#
# Walks every .rs file and enforces the four rules configured in
# analyzer.toml: dp-taint, lock-order, panic-freedom, f64-exactness.
# Exit 0 = clean; 1 = unsuppressed findings; 2 = usage/config error.
set -eu
cd "$(dirname "$0")/.."
exec cargo run -q --release -p privid-analyzer -- check "$@"
