#!/usr/bin/env sh
# Records a machine-readable durability benchmark snapshot at the repo root
# (BENCH_PR5.json): journaled admission throughput at each fsync policy and
# recovery time for a long WAL vs a snapshot, tracked PR over PR.
#
# Usage:
#   scripts/bench_durability.sh            # full snapshot -> BENCH_PR5.json
#   scripts/bench_durability.sh --smoke    # quick CI smoke run
#   scripts/bench_durability.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr5_durability -- "$@"
