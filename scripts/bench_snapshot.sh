#!/usr/bin/env sh
# Records a machine-readable pipeline benchmark snapshot at the repo root
# (BENCH_PR2.json), tracking the perf trajectory PR over PR.
#
# Usage:
#   scripts/bench_snapshot.sh            # full snapshot -> BENCH_PR2.json
#   scripts/bench_snapshot.sh --smoke    # quick CI smoke run
#   scripts/bench_snapshot.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_snapshot -- "$@"
