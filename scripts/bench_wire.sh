#!/bin/sh
# Wire protocol + TCP front-end benchmark (PR 10).
# Usage: ./scripts/bench_wire.sh [--smoke] [--out PATH]
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr10_wire -- "$@"
