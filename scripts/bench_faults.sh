#!/usr/bin/env sh
# Records a machine-readable fault-tolerance benchmark snapshot at the repo
# root (BENCH_PR7.json): journaled admission throughput through the storage
# Vfs indirection (StdVfs vs a disarmed FaultVfs, both fsync policies) and
# the bounded-backoff retry path's added append latency under scripted
# transient faults, tracked PR over PR.
#
# Usage:
#   scripts/bench_faults.sh            # full snapshot -> BENCH_PR7.json
#   scripts/bench_faults.sh --smoke    # quick CI smoke run
#   scripts/bench_faults.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr7_faults -- "$@"
