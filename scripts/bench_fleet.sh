#!/usr/bin/env sh
# Records a machine-readable fleet-sharding benchmark snapshot at the repo
# root (BENCH_PR9.json): fsync-durable admission throughput through the
# group-commit WAL (serial vs concurrent vs pipelined flights) and an
# admissions/s sweep over shard count x fsync policy with aggressive
# per-shard snapshot compaction, tracked PR over PR.
#
# Usage:
#   scripts/bench_fleet.sh            # full snapshot -> BENCH_PR9.json
#   scripts/bench_fleet.sh --smoke    # quick CI smoke run
#   scripts/bench_fleet.sh --out F    # write to a different path
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p privid-bench --bin bench_pr9_fleet -- "$@"
