//! The video owner's masking workflow (§7.1, Appendix F): analyse past
//! footage, build the greedy mask ordering (Algorithm 2), publish a mask with
//! its reduced ρ, and show how the same query gets less noise with the mask.
//!
//! Run with: `cargo run --example masking_policy`

use privid::core::masking::MaskingAnalysis;
use privid::{
    greedy_mask_order, ChunkProcessor, GridSpec, MaskPolicy, PrivacyPolicy, PrividSystem, SceneConfig,
    SceneGenerator, UniqueEntrantProcessor,
};

fn main() {
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(1.0)).generate();
    let grid = GridSpec::coarse(scene.frame_size);

    // --- Step 1: greedy mask ordering over historical footage ---------------------------
    let plan = greedy_mask_order(&scene, grid, 80);
    println!("Algorithm 2 on one hour of campus footage:");
    println!(
        "  unmasked max persistence: {:.0} s over {} identities",
        plan.original_max_persistence, plan.original_identities
    );
    for n in [5, 20, 40] {
        if let Some(step) = plan.steps.get(n - 1) {
            println!(
                "  after masking {:>2} cells: max persistence {:>6.0} s, identities retained {:>5.1}%",
                n,
                step.max_persistence_after,
                step.identities_retained * 100.0
            );
        }
    }

    // --- Step 2: pick the mask achieving a 3x reduction and derive its policy -----------
    let prefix = plan.prefix_for_reduction(3.0).unwrap_or(plan.steps.len());
    let mask = plan.mask_prefix(prefix);
    let analysis = MaskingAnalysis::analyse(&scene, &mask);
    println!(
        "chosen mask: {} cells ({:.1}% of the grid), reduction {:.2}x, identities retained {:.1}%",
        mask.len(),
        analysis.masked_fraction * 100.0,
        analysis.reduction_factor,
        analysis.identities_retained * 100.0
    );

    // --- Step 3: register the camera with both policies and compare noise ---------------
    let unmasked_rho = analysis.max_before_secs * 1.1;
    let masked_rho = analysis.max_after_secs * 1.1;
    let mut privid = PrividSystem::new(5);
    privid.register_camera("campus", scene, PrivacyPolicy::new(unmasked_rho, 2, 10.0)).expect("camera/processor registration must succeed");
    privid.register_mask("campus", "linger_mask", MaskPolicy::new(mask, masked_rho)).unwrap();
    privid.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");

    let base = "
        SPLIT campus BEGIN 0 END 30 min BY TIME 5 sec STRIDE 0 sec {MASK} INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 1.0;";
    let without = privid.execute_text(&base.replace("{MASK}", "")).unwrap();
    let with = privid.execute_text(&base.replace("{MASK}", "WITH MASK linger_mask")).unwrap();

    println!("query noise without mask: scale = {:.1} (rho = {:.0} s)", without.releases[0].noise_scale, unmasked_rho);
    println!("query noise with mask   : scale = {:.1} (rho = {:.0} s)", with.releases[0].noise_scale, masked_rho);
    println!(
        "noise reduction factor  : {:.2}x",
        without.releases[0].noise_scale / with.releases[0].noise_scale
    );
}
