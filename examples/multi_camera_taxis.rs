//! Multi-camera analytics over the synthetic Porto taxi fleet (the paper's
//! Case 2, queries Q4–Q6): a JOIN across two cameras and an ARGMAX across
//! several cameras, each a single Privid query with its own budget.
//!
//! Run with: `cargo run --example multi_camera_taxis`

use privid::{ChunkProcessor, PortoConfig, PortoDataset, PrivacyPolicy, PrividSystem, TaxiShiftProcessor};

fn main() {
    // A scaled-down fleet: 60 taxis, 8 cameras, 7 days (the full 442/105/365
    // configuration is exercised by the experiment harness).
    let config = PortoConfig { num_taxis: 60, num_cameras: 8, days: 7, ..PortoConfig::default() };
    let dataset = PortoDataset::generate(config);

    let mut privid = PrividSystem::new(11);
    for cam in 0..8u32 {
        let scene = dataset.camera_scene(cam);
        // Policy ρ per camera: the longest single visit (plus margin), as the
        // video owner would estimate from historical footage.
        let rho = dataset.max_visit_duration(cam) * 1.2;
        privid.register_camera(format!("porto{cam}"), scene, PrivacyPolicy::new(rho.max(30.0), 4, 20.0)).expect("camera/processor registration must succeed");
    }
    privid.register_processor("taxi_model", || Box::new(TaxiShiftProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");

    // --- Q5-style query: taxis seen by BOTH camera 0 and camera 1 on the same day --------
    let join_query = r#"
        SPLIT porto0 BEGIN 0 END 7 days BY TIME 60 sec STRIDE 0 sec INTO c0;
        SPLIT porto1 BEGIN 0 END 7 days BY TIME 60 sec STRIDE 0 sec INTO c1;
        PROCESS c0 USING taxi_model TIMEOUT 1 sec PRODUCING 30 ROWS
            WITH SCHEMA (taxi:STRING="", day:NUMBER=0, hour:NUMBER=0, camera:STRING="") INTO t0;
        PROCESS c1 USING taxi_model TIMEOUT 1 sec PRODUCING 30 ROWS
            WITH SCHEMA (taxi:STRING="", day:NUMBER=0, hour:NUMBER=0, camera:STRING="") INTO t1;
        SELECT COUNT(*) FROM (SELECT taxi, day FROM t0 JOIN t1 ON taxi, day GROUP BY taxi, day) CONSUMING 1.0;
    "#;
    let join_result = privid.execute_text(join_query).expect("join query");
    let noisy = join_result.releases[0].value.as_number().unwrap();
    let raw = join_result.releases[0].raw.as_number().unwrap();
    let gt = dataset.mean_daily_intersection(0, 1) * 7.0;
    println!("Q5 (JOIN): distinct (taxi, day) pairs seen by both porto0 and porto1 over a week");
    println!("  noisy = {noisy:.1}, raw = {raw:.1}, ground truth = {gt:.1}");

    // --- Q6-style query: which camera saw the most traffic? ------------------------------
    let mut splits = String::new();
    for cam in 0..4u32 {
        splits.push_str(&format!(
            "SPLIT porto{cam} BEGIN 0 END 7 days BY TIME 60 sec STRIDE 0 sec INTO cc{cam};\n\
             PROCESS cc{cam} USING taxi_model TIMEOUT 1 sec PRODUCING 30 ROWS\n\
                WITH SCHEMA (taxi:STRING=\"\", day:NUMBER=0, hour:NUMBER=0, camera:STRING=\"\") INTO tt{cam};\n"
        ));
    }
    let argmax_query = format!(
        "{splits}SELECT ARGMAX(camera) FROM tt0 UNION tt1 ON camera UNION tt2 ON camera UNION tt3 ON camera CONSUMING 1.0;"
    );
    let argmax_result = privid.execute_text(&argmax_query).expect("argmax query");
    println!("Q6 (ARGMAX): busiest of cameras 0-3 = {:?}", argmax_result.releases[0].value);
    println!("  (ground-truth busiest camera overall: porto{})", dataset.busiest_camera());
    println!("total epsilon spent across both queries: {}", join_result.epsilon_spent + argmax_result.epsilon_spent);
}
