//! Live ingestion: a camera that is still recording appends frame batches to
//! an append-only recording while a standing query counts people over every
//! completed five-minute window.
//!
//! Run with: `cargo run --example live_ingestion`

use privid::{
    ChunkProcessor, FrameBatch, FrameRate, FrameSize, Parallelism, PrivacyPolicy, PrividError, QueryService,
    SceneConfig, SceneGenerator, UniqueEntrantProcessor,
};

fn main() {
    // --- Video owner side -------------------------------------------------------------
    // Register a *live* camera: no footage yet, just the camera's parameters
    // and the privacy policy. The budget ledger starts empty and grows with
    // the timeline — every appended slot is born with the policy's full ε.
    let service = QueryService::new().with_parallelism(Parallelism::Auto);
    service.register_live_camera("lobby", FrameRate::new(10.0), FrameSize::new(1280, 720), PrivacyPolicy::new(60.0, 2, 10.0)).expect("camera/processor registration must succeed");
    service.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");

    // --- Analyst side ------------------------------------------------------------------
    // A standing query re-runs over each newly completed 300 s window,
    // debiting 0.5 ε from that window's frames per release.
    let per_window = "
        SPLIT lobby BEGIN 0 END 300 BY TIME 10 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 0.5;";
    service.register_standing_query("lobby_footfall", 7, per_window).expect("standing query registered");

    // Querying footage that does not exist yet is a clean, retryable error.
    match service.execute_text(1, per_window) {
        Err(PrividError::BeyondLiveEdge { live_edge_secs, .. }) => {
            println!("too early: live edge at {live_edge_secs} s — retry once the camera catches up\n");
        }
        other => panic!("expected BeyondLiveEdge, got {other:?}"),
    }

    // --- The camera records -------------------------------------------------------------
    // Simulate the camera: generate 20 minutes of ground truth and deliver it
    // as 150 s frame batches, each carrying the objects that first appeared in
    // it (their trajectories may extend past the edge; the recording reveals
    // them batch by batch).
    let truth = SceneGenerator::new(SceneConfig::campus().with_duration_hours(20.0 / 60.0)).generate();
    let batch_secs = 150.0;
    let n_batches = 8;
    let mut per_batch: Vec<Vec<privid::TrackedObject>> = vec![Vec::new(); n_batches];
    for obj in &truth.objects {
        let first = obj.first_seen().map(|t| t.as_secs()).unwrap_or(0.0);
        per_batch[((first / batch_secs).floor() as usize).min(n_batches - 1)].push(obj.clone());
    }

    for (k, objects) in per_batch.into_iter().enumerate() {
        let n_objects = objects.len();
        let outcome = service.append_frames("lobby", FrameBatch::new(batch_secs, objects)).expect("append admitted");
        println!(
            "batch {k}: +{batch_secs} s ({n_objects} new objects) -> live edge {:.0} s, {} standing window(s) fired",
            outcome.live_edge_secs, outcome.standing_fired
        );
    }

    // --- What the analyst sees ----------------------------------------------------------
    println!("\nstanding query 'lobby_footfall':");
    for firing in service.standing_results("lobby_footfall").expect("registered above") {
        let window = format!("[{:>4.0}, {:>4.0})", firing.window.start.as_secs(), firing.window.end.as_secs());
        match &firing.result {
            Ok(result) => {
                let release = &result.releases[0];
                println!(
                    "  {window} s: noisy count {:8.2}   (raw {:.0}, ε {:.2})",
                    release.value.as_number().unwrap(),
                    release.raw.as_number().unwrap(),
                    release.epsilon
                );
            }
            Err(e) => println!("  {window} s: {e}"),
        }
    }

    // Closed windows remain queryable ad hoc, and their budget shows exactly
    // one standing debit per slot.
    let remaining = service.remaining_budget("lobby", 450.0).expect("camera registered");
    println!("\nremaining ε on the [300, 600) s frames: {remaining} (started at 10, one standing release at 0.5)");
}
