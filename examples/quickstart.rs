//! Quickstart: register a camera, attach an analyst processor, run a private
//! counting query, and inspect the noisy result.
//!
//! Run with: `cargo run --example quickstart`

use privid::{
    ChunkProcessor, Parallelism, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator, UniqueEntrantProcessor,
};

fn main() {
    // --- Video owner side -------------------------------------------------------------
    // Generate one hour of the synthetic campus scene (the stand-in for the
    // paper's campus YouTube stream) and register it with a privacy policy:
    // protect every appearance shorter than 90 s, up to K = 2 appearances,
    // with a per-frame budget of 10.
    //
    // Chunk execution fans out over a worker pool (`Parallelism::Auto` uses
    // one worker per core); results are identical at any worker count.
    let scene = SceneGenerator::new(SceneConfig::campus().with_duration_hours(1.0)).generate();
    let mut privid = PrividSystem::new(42).with_parallelism(Parallelism::Auto);
    privid.register_camera("campus", scene, PrivacyPolicy::new(90.0, 2, 10.0)).expect("camera/processor registration must succeed");

    // --- Analyst side ------------------------------------------------------------------
    // The analyst supplies a chunk processor ("executable") that emits one row
    // per person entering the scene during each chunk, and a Privid query that
    // counts those rows over a 30-minute window.
    privid.register_processor("person_counter", || {
        Box::new(UniqueEntrantProcessor::people()) as Box<dyn ChunkProcessor>
    }).expect("camera/processor registration must succeed");

    let query = "
        SPLIT campus BEGIN 0 END 30 min BY TIME 5 sec STRIDE 0 sec INTO chunks;
        PROCESS chunks USING person_counter TIMEOUT 1 sec PRODUCING 20 ROWS
            WITH SCHEMA (count:NUMBER=0) INTO people;
        SELECT COUNT(*) FROM people CONSUMING 1.0;";

    let result = privid.execute_text(query).expect("query should be admitted");

    // --- What the analyst sees ----------------------------------------------------------
    let release = &result.releases[0];
    println!("Privid quickstart: counting people on the campus camera");
    println!("  chunks processed      : {}", result.chunks_processed);
    println!("  sensitivity (Δ)       : {}", release.sensitivity);
    println!("  noise scale (Δ/ε)     : {}", release.noise_scale);
    println!("  noisy count (released): {:.1}", release.value.as_number().unwrap());
    println!("  raw count (hidden)    : {:?}  <- never shown to a real analyst", release.raw);
    println!("  ε spent               : {}", result.epsilon_spent);
    println!(
        "  budget left at t=10min: {:.2}",
        privid.remaining_budget("campus", 600.0).unwrap()
    );
}
