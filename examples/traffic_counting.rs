//! Traffic analytics on the highway camera: the full Listing 1 query (average
//! speed plus per-colour unique-car counts), exercising range truncation,
//! intermediate GROUP BY deduplication, and explicit GROUP BY keys.
//!
//! Run with: `cargo run --example traffic_counting`

use privid::{CarTableProcessor, ChunkProcessor, PrivacyPolicy, PrividSystem, SceneConfig, SceneGenerator};

fn main() {
    // One hour of the synthetic highway scene, at a tenth of the nominal
    // traffic so the example runs in a couple of seconds.
    let scene =
        SceneGenerator::new(SceneConfig::highway().with_duration_hours(1.0).with_arrival_scale(0.1)).generate();
    let mut privid = PrividSystem::new(7);
    // The highway policy: appearances up to 5 minutes (parked cars are handled
    // by masks in the full evaluation), K = 2.
    privid.register_camera("camA", scene, PrivacyPolicy::new(300.0, 2, 10.0)).expect("camera/processor registration must succeed");
    privid.register_processor("model.py", || Box::new(CarTableProcessor) as Box<dyn ChunkProcessor>).expect("camera/processor registration must succeed");

    // Listing 1, adapted to offset timestamps: one hour of video, 5 s chunks.
    let query = r#"
        SPLIT camA BEGIN 0 END 1 hr BY TIME 5 sec STRIDE 0 sec INTO chunksA;

        PROCESS chunksA USING model.py TIMEOUT 1 sec
            PRODUCING 10 ROWS
            WITH SCHEMA (plate:STRING="", color:STRING="", speed:NUMBER=0)
            INTO tableA;

        /* S1: average speed of all cars */
        SELECT AVG(range(speed, 30, 60)) FROM tableA CONSUMING 0.5;

        /* S2: count of unique cars of each colour */
        SELECT color, COUNT(plate) FROM (SELECT plate, color FROM tableA GROUP BY plate)
            GROUP BY color WITH KEYS ["RED", "WHITE", "SILVER"] CONSUMING 0.5;
    "#;

    let result = privid.execute_text(query).expect("Listing 1 should execute");

    println!("Listing 1 on the synthetic highway camera ({} chunk executions)", result.chunks_processed);
    println!("{:<28} {:>12} {:>12} {:>10} {:>8}", "release", "noisy", "raw", "delta", "epsilon");
    for r in &result.releases {
        let noisy = r.value.as_number().unwrap_or(f64::NAN);
        let raw = r.raw.as_number().unwrap_or(f64::NAN);
        println!("{:<28} {:>12.2} {:>12.2} {:>10.1} {:>8.3}", r.label, noisy, raw, r.sensitivity, r.epsilon);
    }
    println!("total epsilon spent: {}", result.epsilon_spent);
}
